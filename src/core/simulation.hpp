#pragma once
// High-level facade: owns a BlockSystem and an engine, runs the multi-step
// loop (loop 1), detects static convergence, and exposes trajectory hooks.
// This is the entry point examples and benches use.

#include <functional>

#include "core/engine.hpp"

namespace gdda::core {

struct RunSummary {
    int steps_run = 0;
    double simulated_time = 0.0;
    bool reached_static = false;
    StepStats last;
};

class DdaSimulation {
public:
    DdaSimulation(block::BlockSystem sys, SimConfig cfg, EngineMode mode = EngineMode::Serial);

    /// Advance one step.
    StepStats step() { return engine_.step(); }

    /// Run up to `max_steps`; stops early when `until_static` is set and the
    /// peak block velocity stays below `static_velocity` for 20 consecutive
    /// steps. Calls `on_step(step_index, stats)` when provided.
    RunSummary run(int max_steps, bool until_static = false, double static_velocity = 1e-4,
                   const std::function<void(int, const StepStats&)>& on_step = nullptr);

    [[nodiscard]] const block::BlockSystem& system() const { return engine_.system(); }
    [[nodiscard]] block::BlockSystem& system() { return engine_.system(); }
    [[nodiscard]] const DdaEngine& engine() const { return engine_; }
    [[nodiscard]] DdaEngine& engine() { return engine_; }

private:
    block::BlockSystem sys_;
    DdaEngine engine_;
};

} // namespace gdda::core

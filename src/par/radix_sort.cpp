#include "par/radix_sort.hpp"

#include <array>
#include <numeric>

namespace gdda::par {

namespace {
constexpr int kBits = 8;
constexpr int kBuckets = 1 << kBits;
constexpr std::uint64_t kMask = kBuckets - 1;

// One counting pass over `shift` bits; returns false if all keys share the
// same bucket (pass can be skipped).
template <typename MoveFn>
bool radix_pass(std::span<const std::uint64_t> keys, int shift, MoveFn&& move) {
    std::array<std::size_t, kBuckets> count{};
    for (std::uint64_t k : keys) ++count[(k >> shift) & kMask];
    bool trivial = false;
    for (std::size_t c : count) {
        if (c == keys.size()) { trivial = true; break; }
    }
    if (trivial) return false;
    std::array<std::size_t, kBuckets> offset{};
    std::size_t acc = 0;
    for (int b = 0; b < kBuckets; ++b) {
        offset[b] = acc;
        acc += count[b];
    }
    for (std::size_t i = 0; i < keys.size(); ++i) {
        move(i, offset[(keys[i] >> shift) & kMask]++);
    }
    return true;
}
} // namespace

void radix_sort(std::vector<std::uint64_t>& keys) {
    std::vector<std::uint64_t> tmp(keys.size());
    for (int shift = 0; shift < 64; shift += kBits) {
        const bool moved = radix_pass(keys, shift, [&](std::size_t from, std::size_t to) {
            tmp[to] = keys[from];
        });
        if (moved) keys.swap(tmp);
    }
}

void radix_sort_pairs(std::vector<std::uint64_t>& keys, std::vector<std::uint32_t>& values) {
    std::vector<std::uint64_t> ktmp(keys.size());
    std::vector<std::uint32_t> vtmp(values.size());
    for (int shift = 0; shift < 64; shift += kBits) {
        const bool moved = radix_pass(keys, shift, [&](std::size_t from, std::size_t to) {
            ktmp[to] = keys[from];
            vtmp[to] = values[from];
        });
        if (moved) {
            keys.swap(ktmp);
            values.swap(vtmp);
        }
    }
}

std::vector<std::uint32_t> sort_permutation(std::span<const std::uint64_t> keys) {
    std::vector<std::uint64_t> k(keys.begin(), keys.end());
    std::vector<std::uint32_t> perm(keys.size());
    std::iota(perm.begin(), perm.end(), 0u);
    radix_sort_pairs(k, perm);
    return perm;
}

} // namespace gdda::par

#pragma once
// Prefix-sum (scan) and stream-compaction primitives. These are the Merrill
// scan [30] stand-ins that the GPU pipeline uses to classify contact data and
// to build segmented-assembly indices (paper Fig. 4).

#include <cstdint>
#include <span>
#include <vector>

namespace gdda::par {

/// out[i] = sum(in[0..i-1]); returns the total sum.
std::uint64_t exclusive_scan(std::span<const std::uint32_t> in, std::span<std::uint32_t> out);

/// out[i] = sum(in[0..i]); returns the total sum.
std::uint64_t inclusive_scan(std::span<const std::uint32_t> in, std::span<std::uint32_t> out);

/// Indices i with flags[i] != 0, in order (stream compaction via scan).
std::vector<std::uint32_t> compact_indices(std::span<const std::uint32_t> flags);

/// Gather: out[k] = values[idx[k]].
template <typename T>
std::vector<T> gather(std::span<const T> values, std::span<const std::uint32_t> idx) {
    std::vector<T> out;
    out.reserve(idx.size());
    for (std::uint32_t i : idx) out.push_back(values[i]);
    return out;
}

/// Segment boundary detection: di[i] = (keys[i] != keys[i-1]) ? 1 : 0, di[0]=1.
/// This is the "boundary position search" step of the paper's Fig. 4.
std::vector<std::uint32_t> segment_heads(std::span<const std::uint64_t> sorted_keys);

/// Given head flags, returns the exclusive end offset of each segment
/// (paper's sd2 array): ends[s] = one past the last element of segment s.
std::vector<std::uint32_t> segment_ends(std::span<const std::uint32_t> heads);

} // namespace gdda::par

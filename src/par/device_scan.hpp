#pragma once
// Device-structured scan: the three-kernel GPU decomposition of a prefix
// sum (Merrill & Grimshaw [30]) — per-block upsweep of partial sums, a scan
// of the block sums, then a per-block downsweep that adds each block's
// prefix. The serial par::exclusive_scan is the semantic reference; this
// version exists to mirror (and test) the exact pass structure the GPU
// pipeline relies on, and to run the blocks in parallel via parallel_for.
//
// Also provides reduce_by_key over sorted keys — the primitive the Fig.-4
// segmented assembly ultimately is.

#include <cstdint>
#include <span>
#include <vector>

#include "simt/cost_model.hpp"

namespace gdda::par {

inline constexpr std::size_t kScanBlock = 256; ///< elements per virtual block

/// out[i] = sum(in[0..i-1]); returns the total. Identical results to
/// exclusive_scan, computed with the GPU's upsweep/spine/downsweep passes.
/// When `cost` is given, accounts the three kernels' traffic.
std::uint64_t device_exclusive_scan(std::span<const std::uint32_t> in,
                                    std::span<std::uint32_t> out,
                                    simt::KernelCost* cost = nullptr);

/// Segmented reduction over *sorted* keys: for each run of equal keys,
/// outputs (key, sum of values). The scalar core of segmented assembly.
struct ReduceByKeyResult {
    std::vector<std::uint64_t> keys;
    std::vector<double> sums;
};
ReduceByKeyResult reduce_by_key(std::span<const std::uint64_t> sorted_keys,
                                std::span<const double> values,
                                simt::KernelCost* cost = nullptr);

} // namespace gdda::par

#pragma once
// Thread-budget arbitration for the CPU execution backend. Two thread_local
// knobs decide how wide a par::parallel_for team may be on the CALLING
// thread, mirroring how a CUDA stream pins work to one device context:
//
//   team   an explicit team-size request (SimConfig::solver_threads via
//          ScopedTeamSize). 0 = unset: fall back to the ambient OpenMP
//          nthreads-var, so omp_set_num_threads() keeps working for callers
//          that manage OpenMP themselves.
//   cap    a hard upper bound installed by an outer scheduler (one
//          sched::Scheduler worker lane sets cap = inner_threads so that
//          workers x inner_threads <= hardware_concurrency). 0 = uncapped.
//
// Both are per-thread on purpose: a scheduler worker capping ITS jobs must
// never narrow an unrelated engine stepping on another thread. Results are
// invariant under every team size (deterministic_reduce.hpp fixes all
// floating-point summation orders), so the budget is purely a performance
// dial — never a correctness one.

namespace gdda::par {

/// Physical parallelism available to this process (std::thread::
/// hardware_concurrency, clamped to >= 1). Unlike omp_get_max_threads()
/// this does not shrink when a caller pins the ambient OpenMP team.
int hardware_concurrency();

/// Hard per-thread cap on team sizes (scheduler arbiter). 0 = uncapped.
void set_thread_cap(int cap);
int thread_cap();

/// Explicit per-thread team request. 0 = unset (ambient OpenMP default).
void set_team_size(int team);
int team_size();

/// The team width parallel_for will actually use on this thread right now:
/// the explicit team request (honored as asked, oversubscription included)
/// or the ambient OpenMP max when unset, clamped to the scheduler cap;
/// never below 1.
int effective_team();

/// Arbiter rule for an outer scheduler: the inner team width each of
/// `workers` lanes may use so that workers x inner <= hardware_concurrency.
/// `requested` 0 = auto (split the machine evenly, at least 1).
int negotiate_inner_threads(int workers, int requested);

/// RAII team request (engine hot paths): installs `team` (0 = leave the
/// current setting untouched) and restores the previous value on scope exit.
class ScopedTeamSize {
public:
    explicit ScopedTeamSize(int team);
    ~ScopedTeamSize();
    ScopedTeamSize(const ScopedTeamSize&) = delete;
    ScopedTeamSize& operator=(const ScopedTeamSize&) = delete;

private:
    int previous_;
    bool installed_;
};

/// RAII cap (scheduler worker lanes): installs `cap` and restores on exit.
class ScopedThreadCap {
public:
    explicit ScopedThreadCap(int cap);
    ~ScopedThreadCap();
    ScopedThreadCap(const ScopedThreadCap&) = delete;
    ScopedThreadCap& operator=(const ScopedThreadCap&) = delete;

private:
    int previous_;
};

} // namespace gdda::par

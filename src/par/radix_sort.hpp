#pragma once
// LSD radix sort on 64-bit keys with an optional payload, standing in for
// the Merrill radix sort [31] the paper uses for contact-data classification
// and segmented matrix assembly. Stable, 8 bits per pass.

#include <cstdint>
#include <span>
#include <vector>

namespace gdda::par {

/// Sort keys ascending in place.
void radix_sort(std::vector<std::uint64_t>& keys);

/// Sort (key, value) pairs by key ascending, stably. keys/values same length.
void radix_sort_pairs(std::vector<std::uint64_t>& keys, std::vector<std::uint32_t>& values);

/// Returns the permutation p such that keys[p[0]] <= keys[p[1]] <= ... (stable).
std::vector<std::uint32_t> sort_permutation(std::span<const std::uint64_t> keys);

} // namespace gdda::par

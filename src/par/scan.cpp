#include "par/scan.hpp"

#include <cassert>

namespace gdda::par {

std::uint64_t exclusive_scan(std::span<const std::uint32_t> in, std::span<std::uint32_t> out) {
    assert(out.size() >= in.size());
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < in.size(); ++i) {
        out[i] = static_cast<std::uint32_t>(acc);
        acc += in[i];
    }
    return acc;
}

std::uint64_t inclusive_scan(std::span<const std::uint32_t> in, std::span<std::uint32_t> out) {
    assert(out.size() >= in.size());
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < in.size(); ++i) {
        acc += in[i];
        out[i] = static_cast<std::uint32_t>(acc);
    }
    return acc;
}

std::vector<std::uint32_t> compact_indices(std::span<const std::uint32_t> flags) {
    std::vector<std::uint32_t> offsets(flags.size());
    const std::uint64_t total = exclusive_scan(flags, offsets);
    std::vector<std::uint32_t> out(total);
    for (std::size_t i = 0; i < flags.size(); ++i) {
        if (flags[i]) out[offsets[i]] = static_cast<std::uint32_t>(i);
    }
    return out;
}

std::vector<std::uint32_t> segment_heads(std::span<const std::uint64_t> sorted_keys) {
    std::vector<std::uint32_t> heads(sorted_keys.size());
    for (std::size_t i = 0; i < sorted_keys.size(); ++i) {
        heads[i] = (i == 0 || sorted_keys[i] != sorted_keys[i - 1]) ? 1u : 0u;
    }
    return heads;
}

std::vector<std::uint32_t> segment_ends(std::span<const std::uint32_t> heads) {
    // A segment ends where the next head begins (or at the array end).
    std::vector<std::uint32_t> ends;
    for (std::size_t i = 1; i < heads.size(); ++i) {
        if (heads[i]) ends.push_back(static_cast<std::uint32_t>(i));
    }
    if (!heads.empty()) ends.push_back(static_cast<std::uint32_t>(heads.size()));
    return ends;
}

} // namespace gdda::par

#include "par/device_scan.hpp"

#include <cassert>

#include "par/parallel_for.hpp"
#include "par/scan.hpp"

namespace gdda::par {

std::uint64_t device_exclusive_scan(std::span<const std::uint32_t> in,
                                    std::span<std::uint32_t> out,
                                    simt::KernelCost* cost) {
    assert(out.size() >= in.size());
    const std::size_t n = in.size();
    const std::size_t blocks = (n + kScanBlock - 1) / kScanBlock;

    // Kernel 1 (upsweep): each block scans its tile locally and emits its
    // total into the spine.
    std::vector<std::uint64_t> spine(blocks, 0);
    parallel_for(blocks, [&](std::size_t b) {
        const std::size_t lo = b * kScanBlock;
        const std::size_t hi = std::min(lo + kScanBlock, n);
        std::uint64_t acc = 0;
        for (std::size_t i = lo; i < hi; ++i) {
            out[i] = static_cast<std::uint32_t>(acc);
            acc += in[i];
        }
        spine[b] = acc;
    });

    // Kernel 2 (spine scan): exclusive scan of the block totals. The spine
    // is tiny (n / kScanBlock entries) and runs in one block on the device.
    std::uint64_t total = 0;
    for (std::size_t b = 0; b < blocks; ++b) {
        const std::uint64_t t = spine[b];
        spine[b] = total;
        total += t;
    }

    // Kernel 3 (downsweep): add each block's prefix to its tile.
    parallel_for(blocks, [&](std::size_t b) {
        const std::size_t lo = b * kScanBlock;
        const std::size_t hi = std::min(lo + kScanBlock, n);
        const std::uint32_t prefix = static_cast<std::uint32_t>(spine[b]);
        for (std::size_t i = lo; i < hi; ++i) out[i] += prefix;
    });

    if (cost) {
        simt::KernelCost kc;
        kc.name = "device_exclusive_scan";
        const double nn = static_cast<double>(n);
        kc.flops = 2.0 * nn + static_cast<double>(blocks);
        kc.bytes_coalesced = nn * sizeof(std::uint32_t) * 3.0 /* read, write, rmw */ +
                             blocks * 2.0 * sizeof(std::uint64_t);
        kc.depth = 3.0 * 10.0; // three dependent kernels, tree depth each
        kc.launches = 3;
        simt::record_kernel(cost, kc);
    }
    return total;
}

ReduceByKeyResult reduce_by_key(std::span<const std::uint64_t> sorted_keys,
                                std::span<const double> values,
                                simt::KernelCost* cost) {
    assert(sorted_keys.size() == values.size());
    ReduceByKeyResult r;
    const std::vector<std::uint32_t> heads = segment_heads(sorted_keys);
    const std::vector<std::uint32_t> ends = segment_ends(heads);
    r.keys.resize(ends.size());
    r.sums.assign(ends.size(), 0.0);
    std::uint32_t begin = 0;
    for (std::size_t s = 0; s < ends.size(); ++s) {
        double acc = 0.0;
        for (std::uint32_t i = begin; i < ends[s]; ++i) acc += values[i];
        r.keys[s] = sorted_keys[begin];
        r.sums[s] = acc;
        begin = ends[s];
    }
    if (cost) {
        simt::KernelCost kc;
        kc.name = "reduce_by_key";
        const double nn = static_cast<double>(sorted_keys.size());
        kc.flops = 2.0 * nn;
        kc.bytes_coalesced = nn * (sizeof(std::uint64_t) + sizeof(double)) +
                             ends.size() * (sizeof(std::uint64_t) + sizeof(double));
        kc.depth = 20;
        kc.launches = 3; // heads, scan, gather-sum
        kc.branch_slots = nn / 32.0;
        kc.divergent_slots = 0.2 * kc.branch_slots; // ragged segments
        simt::record_kernel(cost, kc);
    }
    return r;
}

} // namespace gdda::par

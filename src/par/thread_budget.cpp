#include "par/thread_budget.hpp"

#include <algorithm>
#include <thread>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace gdda::par {

namespace {
thread_local int g_cap = 0;
thread_local int g_team = 0;
} // namespace

int hardware_concurrency() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

void set_thread_cap(int cap) { g_cap = std::max(cap, 0); }
int thread_cap() { return g_cap; }

void set_team_size(int team) { g_team = std::max(team, 0); }
int team_size() { return g_team; }

int effective_team() {
    int t;
    if (g_team > 0) {
        // Explicit request: honor it as asked, including oversubscription —
        // the determinism tests deliberately run 8-wide teams on small hosts
        // to prove the bits do not depend on the physical core count.
        t = g_team;
    } else {
#ifdef _OPENMP
        t = omp_get_max_threads();
#else
        t = 1;
#endif
    }
    if (g_cap > 0) t = std::min(t, g_cap);
    return std::max(t, 1);
}

int negotiate_inner_threads(int workers, int requested) {
    const int lanes = std::max(workers, 1);
    const int fair = std::max(hardware_concurrency() / lanes, 1);
    if (requested <= 0) return fair;           // auto: split the machine evenly
    return std::min(requested, std::max(fair, 1));
}

ScopedTeamSize::ScopedTeamSize(int team) : previous_(g_team), installed_(team > 0) {
    if (installed_) set_team_size(team);
}

ScopedTeamSize::~ScopedTeamSize() {
    if (installed_) g_team = previous_;
}

ScopedThreadCap::ScopedThreadCap(int cap) : previous_(g_cap) { set_thread_cap(cap); }

ScopedThreadCap::~ScopedThreadCap() { g_cap = previous_; }

} // namespace gdda::par

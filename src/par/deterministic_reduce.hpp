#pragma once
// Deterministic parallel reductions. Floating-point addition is not
// associative, so a reduction whose grouping depends on the thread count
// (omp reduction, atomics) returns different low-order bits from run to run.
// This header fixes the grouping instead: the index space is cut into
// fixed-size chunks (a pure function of n, NEVER of the thread count), each
// chunk is summed serially left-to-right, and the chunk partials are folded
// by an ordered pairwise combine tree — the same shape a CUDA shared-memory
// tree reduction uses. Any team size, including 1, produces bit-identical
// doubles, which is what lets the solver hot path go wide without breaking
// the repo's bitwise-determinism contract.
//
// For inputs that fit one chunk the result degenerates to the plain serial
// left-to-right sum, i.e. small systems are bit-identical to the historic
// scalar code path.

#include <cstddef>
#include <vector>

#include "par/parallel_for.hpp"

namespace gdda::par {

/// Fixed chunk width (in reduced items) for every deterministic reduction in
/// the code base. One constant everywhere so fused kernels (pcg.cpp) produce
/// the same partials as their unfused counterparts (sparse::dot).
inline constexpr std::size_t kReduceChunk = 1024;

/// Fold `m` partials with an ordered pairwise tree: adjacent pairs combine
/// first, odd tails carry over, repeat. The association depends only on `m`.
/// Destroys the prefix of `partials` as scratch.
inline double combine_ordered(double* partials, std::size_t m) {
    if (m == 0) return 0.0;
    while (m > 1) {
        const std::size_t half = m / 2;
        for (std::size_t i = 0; i < half; ++i)
            partials[i] = partials[2 * i] + partials[2 * i + 1];
        if (m & 1) {
            partials[half] = partials[m - 1];
            m = half + 1;
        } else {
            m = half;
        }
    }
    return partials[0];
}

/// Deterministic sum over `n` items. `chunk_sum(begin, end)` must return the
/// serial left-to-right sum of items [begin, end) — it may also apply an
/// element-wise side effect (fused kernels), as long as distinct chunks
/// touch disjoint data. Chunks run under parallel_for (team width from the
/// thread budget); the combine tree runs on the calling thread.
template <typename ChunkSum>
double deterministic_reduce(std::size_t n, ChunkSum&& chunk_sum) {
    if (n <= kReduceChunk) return chunk_sum(std::size_t{0}, n);
    const std::size_t chunks = (n + kReduceChunk - 1) / kReduceChunk;
    std::vector<double> partials(chunks);
    parallel_for(chunks, /*grain=*/1, [&](std::size_t c) {
        const std::size_t b = c * kReduceChunk;
        const std::size_t e = b + kReduceChunk < n ? b + kReduceChunk : n;
        partials[c] = chunk_sum(b, e);
    });
    return combine_ordered(partials.data(), chunks);
}

} // namespace gdda::par

#pragma once
// Thin data-parallel loop abstraction standing in for a CUDA kernel launch.
// Backed by OpenMP when available; the loop body must be race-free across
// indices, exactly like a CUDA grid-stride kernel body.

#include <cstddef>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace gdda::par {

template <typename Body>
void parallel_for(std::size_t n, Body&& body) {
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
    for (long long i = 0; i < static_cast<long long>(n); ++i) body(static_cast<std::size_t>(i));
#else
    for (std::size_t i = 0; i < n; ++i) body(i);
#endif
}

inline int hardware_threads() {
#ifdef _OPENMP
    return omp_get_max_threads();
#else
    return 1;
#endif
}

} // namespace gdda::par

#pragma once
// Thin data-parallel loop abstraction standing in for a CUDA kernel launch.
// Backed by OpenMP when available; the loop body must be race-free across
// indices, exactly like a CUDA grid-stride kernel body.
//
// Team width comes from the per-thread budget in thread_budget.hpp (engine
// request clamped by the scheduler cap, falling back to the ambient OpenMP
// default), so a sched::Scheduler worker and a latency-mode single engine
// can share one binary without oversubscribing the host. The `grain`
// parameter is the minimum number of indices worth one thread's dispatch:
// loops smaller than two grains fall through to the plain serial loop so
// tiny scenes never pay the OpenMP fork/join overhead.

#include <cstddef>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "par/thread_budget.hpp"

namespace gdda::par {

/// Default grain: below ~2 x this many indices a parallel dispatch costs
/// more than it buys on element-wise bodies.
inline constexpr std::size_t kDefaultGrain = 256;

template <typename Body>
void parallel_for(std::size_t n, std::size_t grain, Body&& body) {
#ifdef _OPENMP
    const int team = effective_team();
    if (team > 1 && (grain == 0 || n >= 2 * grain)) {
#pragma omp parallel for schedule(static) num_threads(team)
        for (long long i = 0; i < static_cast<long long>(n); ++i)
            body(static_cast<std::size_t>(i));
        return;
    }
#else
    (void)grain;
#endif
    for (std::size_t i = 0; i < n; ++i) body(i);
}

template <typename Body>
void parallel_for(std::size_t n, Body&& body) {
    parallel_for(n, kDefaultGrain, static_cast<Body&&>(body));
}

inline int hardware_threads() {
#ifdef _OPENMP
    return omp_get_max_threads();
#else
    return 1;
#endif
}

} // namespace gdda::par

#pragma once
// Thin data-parallel loop abstraction standing in for a CUDA kernel launch.
// Backed by OpenMP when available; the loop body must be race-free across
// indices, exactly like a CUDA grid-stride kernel body.
//
// Team width comes from the per-thread budget in thread_budget.hpp (engine
// request clamped by the scheduler cap, falling back to the ambient OpenMP
// default), so a sched::Scheduler worker and a latency-mode single engine
// can share one binary without oversubscribing the host. The `grain`
// parameter is the minimum number of indices worth one thread's dispatch:
// loops smaller than two grains fall through to the plain serial loop so
// tiny scenes never pay the OpenMP fork/join overhead.

#include <chrono>
#include <cstddef>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "par/thread_budget.hpp"

namespace gdda::par {

/// Default grain: below ~2 x this many indices a parallel dispatch costs
/// more than it buys on element-wise bodies.
inline constexpr std::size_t kDefaultGrain = 256;

namespace detail {
inline double& parallel_seconds_slot() {
    thread_local double s = 0.0;
    return s;
}
inline int& parallel_depth_slot() {
    thread_local int d = 0;
    return d;
}
} // namespace detail

/// Cumulative wall-clock seconds this thread has spent inside dispatch-
/// eligible parallel_for regions (n large enough for the grain to allow a
/// team dispatch). Eligibility — not the actual team width — decides what
/// counts, so a 1-core host still reports the *parallelizable* fraction of
/// its step time and the Amdahl picture survives under-provisioned CI.
/// Sample before/after a region of interest and subtract.
inline double parallel_region_seconds() { return detail::parallel_seconds_slot(); }

template <typename Body>
void parallel_for(std::size_t n, std::size_t grain, Body&& body) {
    const bool eligible = (grain == 0 || n >= 2 * grain);
    // Outermost eligible dispatch only: nested parallel_for calls issued from
    // inside a loop body (device_scan's internal passes, chunk bodies) would
    // otherwise double-charge the same wall time.
    const bool timed = eligible && detail::parallel_depth_slot()++ == 0;
    const auto t0 = timed ? std::chrono::steady_clock::now()
                          : std::chrono::steady_clock::time_point{};
#ifdef _OPENMP
    const int team = effective_team();
    if (team > 1 && eligible) {
#pragma omp parallel for schedule(static) num_threads(team)
        for (long long i = 0; i < static_cast<long long>(n); ++i)
            body(static_cast<std::size_t>(i));
    } else {
        for (std::size_t i = 0; i < n; ++i) body(i);
    }
#else
    for (std::size_t i = 0; i < n; ++i) body(i);
#endif
    if (eligible) {
        if (timed)
            detail::parallel_seconds_slot() +=
                std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
        --detail::parallel_depth_slot();
    }
}

template <typename Body>
void parallel_for(std::size_t n, Body&& body) {
    parallel_for(n, kDefaultGrain, static_cast<Body&&>(body));
}

inline int hardware_threads() {
#ifdef _OPENMP
    return omp_get_max_threads();
#else
    return 1;
#endif
}

} // namespace gdda::par

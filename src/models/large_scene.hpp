#pragma once
// Large-scene generator tier (50k-500k blocks): a seeded, jittered block
// lattice — the `stacks`/`falling_rocks` packing shape scaled far past the
// paper's 4.4k-block cases, sized for exercising the O(n) contact pipeline
// (hash broad phase + pair cache) where the all-pairs mapping is a wall.
// Construction is O(n) and deterministic for a given parameter set.

#include <vector>

#include "block/block_system.hpp"

namespace gdda::models {

struct LatticeParams {
    int cols = 100;          ///< blocks per row
    int rows = 100;          ///< rows stacked above the floor
    double block_size = 1.0; ///< nominal block edge length
    double gap = 0.02;       ///< nominal clearance between neighbors
    double size_jitter = 0.2;///< seeded per-block edge-length jitter (fraction)
    unsigned seed = 21;
    bool fixed_floor = true; ///< one fixed slab under the lattice
};

/// Build the jittered lattice: rows x cols loose blocks resting in a grid,
/// optionally on a fixed floor slab spanning the full width.
block::BlockSystem make_block_lattice(const LatticeParams& params = {});

/// Convenience: pick rows/cols (roughly square) to reach `target_blocks`
/// total blocks (including the floor).
block::BlockSystem make_block_lattice_with_blocks(int target_blocks,
                                                  LatticeParams params = {});

/// The bench/CI tier ladder: 1x, 2x, 4x, 8x block counts starting at
/// `base`. The acceptance gate compares tier 0 against tier 3 (8x blocks
/// must cost <= ~10x broad-phase time on the hash backend).
std::vector<int> large_scene_tiers(int base = 50000);

} // namespace gdda::models

#include "models/falling_rocks.hpp"

#include <cmath>
#include <numbers>
#include <random>

namespace gdda::models {

using block::BlockSystem;
using geom::Vec2;

BlockSystem make_falling_rocks(const FallingRocksParams& p) {
    BlockSystem sys;
    block::Material rock;
    rock.density = 2600.0;
    rock.young = 3.0e9;
    rock.poisson = 0.25;
    sys.materials = {rock};
    block::JointMaterial joint;
    joint.friction_deg = 32.0;
    sys.joints = {joint};

    const double a = p.slope_angle_deg * std::numbers::pi_v<double> / 180.0;
    const double run = p.slope_height / std::tan(a); // horizontal extent of the face
    const double thick = 4.0 * p.rock_size;          // bedrock slab thickness

    // Bedrock: segmented fixed slabs along the face plus a runout floor, so
    // the fixed geometry is polygonal (multiple contact edges) like a real
    // slope surface.
    // Face descends from the crest (0, H) to the toe (run, 0).
    const int face_segments = 14;
    for (int s = 0; s < face_segments; ++s) {
        const double t0 = static_cast<double>(s) / face_segments;
        const double t1 = static_cast<double>(s + 1) / face_segments;
        const Vec2 top0{run * t0, p.slope_height * (1.0 - t0)};
        const Vec2 top1{run * t1, p.slope_height * (1.0 - t1)};
        const Vec2 n = Vec2{-std::sin(a), -std::cos(a)} * thick; // into the slope
        sys.add_block({top0, top1, top1 + n, top0 + n}, 0, /*fixed=*/true);
    }
    // Floor under the runout zone (add_block re-winds it CCW).
    sys.add_block({{run, 0.0},
                   {run + p.floor_length, 0.0},
                   {run + p.floor_length, -thick},
                   {run, -thick}},
                  0, /*fixed=*/true);

    // Loose rocks: jittered quadrilaterals stacked in columns that start
    // just above the face, so they first settle and then slide downhill.
    std::mt19937 rng(p.seed);
    std::uniform_real_distribution<double> jit(1.0 - p.size_jitter, 1.0 + p.size_jitter);
    const double s0 = p.rock_size;
    const double gap = 0.08 * s0;
    auto face_y = [&](double x) { return p.slope_height * (1.0 - x / run); };
    double x = 1.0;
    for (int c = 0; c < p.rock_cols; ++c) {
        // One width per column so neighboring columns can never overlap.
        const double w = s0 * jit(rng);
        double y = face_y(x) + 0.3 * s0; // clear the face at the high corner
        for (int r = 0; r < p.rock_rows; ++r) {
            const double h = s0 * jit(rng);
            sys.add_block({{x, y}, {x + w, y}, {x + w, y + h}, {x, y + h}}, 0);
            y += h + gap;
        }
        x += w + gap;
    }
    return sys;
}

BlockSystem make_falling_rocks_with_blocks(int target_rocks, FallingRocksParams p) {
    const double aspect = 2.0; // keep roughly 2:1 cols:rows
    p.rock_rows = std::max(1, static_cast<int>(std::sqrt(target_rocks / aspect)));
    p.rock_cols = std::max(1, (target_rocks + p.rock_rows - 1) / p.rock_rows);
    return make_falling_rocks(p);
}

} // namespace gdda::models

#include "models/slope.hpp"

#include <cmath>
#include <numbers>
#include <random>

#include "geometry/polygon.hpp"

namespace gdda::models {

using block::BlockSystem;
using geom::Vec2;

namespace {

/// Clip a convex polygon against the half-plane left of (a, b).
std::vector<Vec2> clip(const std::vector<Vec2>& poly, Vec2 a, Vec2 b) {
    std::vector<Vec2> out;
    const std::size_t n = poly.size();
    out.reserve(n + 2);
    for (std::size_t i = 0; i < n; ++i) {
        const Vec2 cur = poly[i];
        const Vec2 nxt = poly[(i + 1) % n];
        const double dc = geom::orient2d(a, b, cur);
        const double dn = geom::orient2d(a, b, nxt);
        if (dc >= 0.0) out.push_back(cur);
        if ((dc > 0.0 && dn < 0.0) || (dc < 0.0 && dn > 0.0)) {
            const double t = dc / (dc - dn);
            out.push_back(cur + (nxt - cur) * t);
        }
    }
    return out;
}

std::vector<Vec2> clip_to_outline(std::vector<Vec2> cell, const std::vector<Vec2>& outline) {
    const std::size_t n = outline.size();
    for (std::size_t i = 0; i < n && cell.size() >= 3; ++i) {
        cell = clip(cell, outline[i], outline[(i + 1) % n]);
    }
    return cell;
}

} // namespace

BlockSystem make_slope(const SlopeParams& p) {
    BlockSystem sys;

    // Materials: paper uses 5 block materials and 38 joint types; vary the
    // stiffness/density mildly so assignment diversity matters.
    sys.materials.clear();
    for (int m = 0; m < p.material_count; ++m) {
        block::Material mat;
        mat.density = 2400.0 + 80.0 * m;
        mat.young = 4.0e9 + 0.5e9 * m;
        mat.poisson = 0.22 + 0.01 * m;
        sys.materials.push_back(mat);
    }
    sys.joints.clear();
    for (int j = 0; j < p.joint_type_count; ++j) {
        block::JointMaterial jm;
        jm.friction_deg = 28.0 + (j % 10);
        jm.cohesion = 0.0;
        jm.tension = 0.0;
        sys.joints.push_back(jm);
    }
    // Pair-dependent joint selection.
    sys.joint_of_material.resize(static_cast<std::size_t>(p.material_count) * p.material_count);
    for (int a = 0; a < p.material_count; ++a)
        for (int b = 0; b < p.material_count; ++b)
            sys.joint_of_material[static_cast<std::size_t>(a) * p.material_count + b] =
                (a * 7 + b * 3) % p.joint_type_count;

    // Convex slope outline (CCW): base, toe bench, inclined face, crest.
    const double slope =
        std::tan(p.slope_angle_deg * std::numbers::pi_v<double> / 180.0);
    const double x_crest = p.width - (p.height - p.toe_height) / slope;
    const std::vector<Vec2> outline = {
        {0.0, 0.0}, {p.width, 0.0}, {p.width, p.toe_height}, {x_crest, p.height}, {0.0, p.height}};

    // Joint set directions.
    auto dir = [](double deg) {
        const double r = deg * std::numbers::pi_v<double> / 180.0;
        return Vec2{std::cos(r), std::sin(r)};
    };
    const Vec2 u = dir(p.joint1_dip_deg);
    const Vec2 v = dir(p.joint2_dip_deg);

    std::mt19937 rng(p.seed);
    std::uniform_real_distribution<double> jitter(1.0 - p.spacing_jitter,
                                                  1.0 + p.spacing_jitter);

    // Lattice lines along each set, jittered to look like natural joints.
    const double diag = std::hypot(p.width, p.height) * 1.5;
    std::vector<double> offs_u{-diag};
    while (offs_u.back() < diag) offs_u.push_back(offs_u.back() + p.joint1_spacing * jitter(rng));
    std::vector<double> offs_v{-diag};
    while (offs_v.back() < diag) offs_v.push_back(offs_v.back() + p.joint2_spacing * jitter(rng));

    // Cell (i, j) spans [offs_u[i], offs_u[i+1]] x [offs_v[j], offs_v[j+1]]
    // in the (u, v) oblique frame anchored at the domain center.
    const Vec2 anchor{p.width * 0.5, p.height * 0.5};
    int counter = 0;
    for (std::size_t i = 0; i + 1 < offs_u.size(); ++i) {
        for (std::size_t j = 0; j + 1 < offs_v.size(); ++j) {
            const Vec2 c00 = anchor + u * offs_u[i] + v * offs_v[j];
            const Vec2 c10 = anchor + u * offs_u[i + 1] + v * offs_v[j];
            const Vec2 c11 = anchor + u * offs_u[i + 1] + v * offs_v[j + 1];
            const Vec2 c01 = anchor + u * offs_u[i] + v * offs_v[j + 1];
            std::vector<Vec2> cell = clip_to_outline({c00, c10, c11, c01}, outline);
            if (cell.size() < 3) continue;
            if (std::abs(geom::signed_area(cell)) <
                0.02 * p.joint1_spacing * p.joint2_spacing)
                continue; // discard slivers
            const int mat = counter % p.material_count;
            const int idx = sys.add_block(std::move(cell), mat);
            ++counter;
            if (sys.blocks[idx].centroid.y < p.foundation_depth) sys.blocks[idx].fixed = true;
        }
    }
    return sys;
}

BlockSystem make_slope_with_blocks(int target_blocks, SlopeParams params) {
    // Outline area ~ width * height minus the cut corner; cell area scales
    // with s1 * s2 / sin(angle between sets).
    const double slope =
        std::tan(params.slope_angle_deg * std::numbers::pi_v<double> / 180.0);
    const double x_crest = params.width - (params.height - params.toe_height) / slope;
    const double cut = 0.5 * (params.width - x_crest) * (params.height - params.toe_height);
    const double area = params.width * params.height - cut;
    const double ang = (params.joint2_dip_deg - params.joint1_dip_deg) *
                       std::numbers::pi_v<double> / 180.0;
    const double cell = area / std::max(target_blocks, 1) * std::abs(std::sin(ang));
    const double s = std::sqrt(cell);
    params.joint1_spacing = s;
    params.joint2_spacing = s;
    return make_slope(params);
}

} // namespace gdda::models

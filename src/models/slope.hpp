#pragma once
// Procedural jointed-slope generator (the paper's case 1: static stability
// analysis of a realistic slope, 4361 blocks, 5 block materials, 38 joint
// types). A convex slope cross-section is cut by two joint sets (dip angle +
// spacing each) into a blocky system; blocks below the foundation line are
// fixed. Material and joint assignment cycles through the requested counts
// so the material/joint diversity of the paper's model is exercised.

#include "block/block_system.hpp"

namespace gdda::models {

struct SlopeParams {
    double width = 80.0;       ///< model width (m)
    double height = 50.0;      ///< crest height (m)
    double toe_height = 10.0;  ///< bench height at the slope toe
    double slope_angle_deg = 55.0; ///< inclination of the free face
    double joint1_dip_deg = 10.0;  ///< first joint set (near-bedding)
    double joint2_dip_deg = 80.0;  ///< second joint set (near-vertical)
    double joint1_spacing = 4.0;
    double joint2_spacing = 4.0;
    double foundation_depth = 4.0; ///< blocks with centroid below are fixed
    int material_count = 5;
    int joint_type_count = 38;
    unsigned seed = 7;       ///< jitters joint spacing like natural sets
    double spacing_jitter = 0.15;
};

/// Build the jointed slope; returns a ready BlockSystem (geometry derived).
block::BlockSystem make_slope(const SlopeParams& params = {});

/// Convenience: pick joint spacings so the model has roughly `target_blocks`.
block::BlockSystem make_slope_with_blocks(int target_blocks, SlopeParams params = {});

} // namespace gdda::models

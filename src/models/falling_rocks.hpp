#pragma once
// Procedural falling-rocks generator (the paper's case 2: dynamic motion of
// rock blocks released at the crest of a 700 m slope, ~1683 blocks of
// average size 2x2 m). Fixed bedrock blocks form the slope face and runout
// floor; loose blocks are stacked near the crest and released under gravity.

#include "block/block_system.hpp"

namespace gdda::models {

struct FallingRocksParams {
    double slope_height = 700.0;
    double slope_angle_deg = 42.0;
    double floor_length = 400.0; ///< runout zone at the slope toe
    double rock_size = 2.0;      ///< average edge length of loose blocks
    int rock_rows = 12;          ///< stacked rows at the crest
    int rock_cols = 24;          ///< blocks per row
    double size_jitter = 0.25;
    unsigned seed = 11;
};

block::BlockSystem make_falling_rocks(const FallingRocksParams& params = {});

/// Convenience: choose rows/cols to reach roughly `target_rocks` blocks.
block::BlockSystem make_falling_rocks_with_blocks(int target_rocks,
                                                  FallingRocksParams params = {});

} // namespace gdda::models

#pragma once
// Small canonical models used by tests and the quickstart example: a block
// resting on a fixed floor, a column of stacked blocks, and a block on an
// inclined plane (the classic Coulomb friction benchmark).

#include "block/block_system.hpp"

namespace gdda::models {

/// One fixed floor block plus one unit block resting on it with `gap`
/// initial clearance.
block::BlockSystem make_block_on_floor(double gap = 0.0);

/// `count` unit blocks stacked vertically on a fixed floor.
block::BlockSystem make_column(int count, double gap = 0.01);

/// A block resting on a fixed plane inclined at `angle_deg`, with joint
/// friction `friction_deg`. Slides iff angle > friction (Coulomb).
block::BlockSystem make_incline(double angle_deg, double friction_deg);

/// A free block high above any support (free-fall test).
block::BlockSystem make_free_block(double drop_height = 10.0);

} // namespace gdda::models

#pragma once
// Jointed rock mass with a tunnel opening — the other canonical DDA
// application (underground excavation stability). A rectangular domain is
// cut by two joint sets; blocks overlapping the circular opening are
// removed, the outer boundary ring is fixed, and gravity loads the roof
// blocks, which may loosen and fall into the opening depending on the joint
// friction.

#include "block/block_system.hpp"

namespace gdda::models {

struct TunnelParams {
    double width = 40.0;
    double height = 40.0;
    double radius = 6.0;          ///< opening radius, centered in the domain
    double joint1_dip_deg = 15.0;
    double joint2_dip_deg = 75.0;
    double joint1_spacing = 3.0;
    double joint2_spacing = 3.0;
    double boundary_margin = 3.0; ///< blocks with centroid this close to the
                                  ///< domain edge are fixed
    double friction_deg = 35.0;
    unsigned seed = 13;
    double spacing_jitter = 0.1;
};

block::BlockSystem make_tunnel(const TunnelParams& params = {});

} // namespace gdda::models

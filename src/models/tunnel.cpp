#include "models/tunnel.hpp"

#include <cmath>
#include <numbers>
#include <random>

#include "geometry/polygon.hpp"

namespace gdda::models {

using block::BlockSystem;
using geom::Vec2;

namespace {
std::vector<Vec2> clip_halfplane(const std::vector<Vec2>& poly, Vec2 a, Vec2 b) {
    std::vector<Vec2> out;
    const std::size_t n = poly.size();
    out.reserve(n + 2);
    for (std::size_t i = 0; i < n; ++i) {
        const Vec2 cur = poly[i];
        const Vec2 nxt = poly[(i + 1) % n];
        const double dc = geom::orient2d(a, b, cur);
        const double dn = geom::orient2d(a, b, nxt);
        if (dc >= 0.0) out.push_back(cur);
        if ((dc > 0.0 && dn < 0.0) || (dc < 0.0 && dn > 0.0))
            out.push_back(cur + (nxt - cur) * (dc / (dc - dn)));
    }
    return out;
}
} // namespace

BlockSystem make_tunnel(const TunnelParams& p) {
    BlockSystem sys;
    block::Material rock;
    rock.density = 2600.0;
    rock.young = 6.0e9;
    rock.poisson = 0.24;
    sys.materials = {rock};
    sys.joints = {block::JointMaterial{.friction_deg = p.friction_deg, .cohesion = 0.0,
                                       .tension = 0.0}};

    const std::vector<Vec2> outline = {
        {0.0, 0.0}, {p.width, 0.0}, {p.width, p.height}, {0.0, p.height}};
    const Vec2 center{p.width / 2.0, p.height / 2.0};

    auto dir = [](double deg) {
        const double r = deg * std::numbers::pi_v<double> / 180.0;
        return Vec2{std::cos(r), std::sin(r)};
    };
    const Vec2 u = dir(p.joint1_dip_deg);
    const Vec2 v = dir(p.joint2_dip_deg);

    std::mt19937 rng(p.seed);
    std::uniform_real_distribution<double> jitter(1.0 - p.spacing_jitter,
                                                  1.0 + p.spacing_jitter);
    const double diag = std::hypot(p.width, p.height);
    std::vector<double> offs_u{-diag};
    while (offs_u.back() < diag) offs_u.push_back(offs_u.back() + p.joint1_spacing * jitter(rng));
    std::vector<double> offs_v{-diag};
    while (offs_v.back() < diag) offs_v.push_back(offs_v.back() + p.joint2_spacing * jitter(rng));

    for (std::size_t i = 0; i + 1 < offs_u.size(); ++i) {
        for (std::size_t j = 0; j + 1 < offs_v.size(); ++j) {
            std::vector<Vec2> cell = {center + u * offs_u[i] + v * offs_v[j],
                                      center + u * offs_u[i + 1] + v * offs_v[j],
                                      center + u * offs_u[i + 1] + v * offs_v[j + 1],
                                      center + u * offs_u[i] + v * offs_v[j + 1]};
            for (std::size_t e = 0; e < outline.size() && cell.size() >= 3; ++e)
                cell = clip_halfplane(cell, outline[e], outline[(e + 1) % outline.size()]);
            if (cell.size() < 3) continue;
            if (std::abs(geom::signed_area(cell)) <
                0.02 * p.joint1_spacing * p.joint2_spacing)
                continue;

            // Excavate: drop blocks whose centroid falls inside the opening.
            const Vec2 c = geom::centroid(cell);
            if (geom::distance(c, center) < p.radius) continue;

            const bool fixed = c.x < p.boundary_margin || c.x > p.width - p.boundary_margin ||
                               c.y < p.boundary_margin || c.y > p.height - p.boundary_margin;
            sys.add_block(std::move(cell), 0, fixed);
        }
    }
    return sys;
}

} // namespace gdda::models

#include "models/large_scene.hpp"

#include <algorithm>
#include <cmath>
#include <random>

namespace gdda::models {

using block::BlockSystem;
using geom::Vec2;

BlockSystem make_block_lattice(const LatticeParams& p) {
    BlockSystem sys;
    block::Material rock;
    rock.density = 2600.0;
    rock.young = 3.0e9;
    rock.poisson = 0.25;
    sys.materials = {rock};
    block::JointMaterial joint;
    joint.friction_deg = 32.0;
    sys.joints = {joint};

    const double pitch = p.block_size + p.gap;
    const double width = p.cols * pitch;

    if (p.fixed_floor) {
        const double thick = 2.0 * p.block_size;
        sys.add_block({{-p.block_size, -thick},
                       {width + p.block_size, -thick},
                       {width + p.block_size, 0.0},
                       {-p.block_size, 0.0}},
                      0, /*fixed=*/true);
    }

    // Jittered quads in a grid: each cell gets its own seeded edge lengths
    // (never exceeding the cell pitch, so neighbors start separated) and a
    // small centering offset, like a loosely dumped rock packing.
    std::mt19937 rng(p.seed);
    std::uniform_real_distribution<double> jit(1.0 - p.size_jitter, 1.0 + p.size_jitter);
    std::uniform_real_distribution<double> off(0.0, 1.0);
    for (int r = 0; r < p.rows; ++r) {
        for (int c = 0; c < p.cols; ++c) {
            const double w = std::min(p.block_size * jit(rng), pitch - 0.25 * p.gap);
            const double h = std::min(p.block_size * jit(rng), pitch - 0.25 * p.gap);
            const double slack_x = pitch - w;
            const double x0 = c * pitch + slack_x * off(rng);
            const double y0 = r * pitch + 0.5 * p.gap;
            sys.add_block({{x0, y0}, {x0 + w, y0}, {x0 + w, y0 + h}, {x0, y0 + h}});
        }
    }
    return sys;
}

BlockSystem make_block_lattice_with_blocks(int target_blocks, LatticeParams params) {
    const int loose = std::max(target_blocks - (params.fixed_floor ? 1 : 0), 1);
    // Wide-and-low (4:1) keeps the vertical extent — and with it the
    // engine's displacement-derived search distance — small relative to the
    // scene, like a real runout field.
    params.cols = std::max(1, static_cast<int>(std::ceil(std::sqrt(4.0 * loose))));
    // The rectangular lattice overshoots the target by less than one row.
    params.rows = std::max(1, (loose + params.cols - 1) / params.cols);
    return make_block_lattice(params);
}

std::vector<int> large_scene_tiers(int base) { return {base, 2 * base, 4 * base, 8 * base}; }

} // namespace gdda::models

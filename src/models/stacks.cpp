#include "models/stacks.hpp"

#include <cmath>
#include <numbers>

namespace gdda::models {

using block::BlockSystem;
using geom::Vec2;

namespace {
BlockSystem base_system() {
    BlockSystem sys;
    block::Material mat;
    mat.density = 2500.0;
    mat.young = 2.0e9;
    mat.poisson = 0.25;
    sys.materials = {mat};
    sys.joints = {block::JointMaterial{.friction_deg = 30.0, .cohesion = 0.0, .tension = 0.0}};
    return sys;
}
} // namespace

BlockSystem make_block_on_floor(double gap) {
    BlockSystem sys = base_system();
    sys.add_block({{-5.0, -1.0}, {5.0, -1.0}, {5.0, 0.0}, {-5.0, 0.0}}, 0, /*fixed=*/true);
    sys.add_block({{-0.5, gap}, {0.5, gap}, {0.5, 1.0 + gap}, {-0.5, 1.0 + gap}}, 0);
    return sys;
}

BlockSystem make_column(int count, double gap) {
    BlockSystem sys = base_system();
    sys.add_block({{-5.0, -1.0}, {5.0, -1.0}, {5.0, 0.0}, {-5.0, 0.0}}, 0, /*fixed=*/true);
    double y = gap;
    for (int i = 0; i < count; ++i) {
        sys.add_block({{-0.5, y}, {0.5, y}, {0.5, y + 1.0}, {-0.5, y + 1.0}}, 0);
        y += 1.0 + gap;
    }
    return sys;
}

BlockSystem make_incline(double angle_deg, double friction_deg) {
    BlockSystem sys = base_system();
    sys.joints[0].friction_deg = friction_deg;
    const double a = angle_deg * std::numbers::pi_v<double> / 180.0;
    const Vec2 t{std::cos(a), std::sin(a)};   // along the incline
    const Vec2 n{-std::sin(a), std::cos(a)};  // out of the incline

    // Fixed ramp: a long slab whose top surface passes through the origin.
    const Vec2 lo = t * -12.0;
    const Vec2 hi = t * 12.0;
    sys.add_block({lo, hi, hi - n * 2.0, lo - n * 2.0}, 0, /*fixed=*/true);

    // Unit block sitting on the surface, slightly above it.
    const Vec2 o = n * 0.002;
    sys.add_block({o + t * -0.5, o + t * 0.5, o + t * 0.5 + n, o + t * -0.5 + n}, 0);
    return sys;
}

BlockSystem make_free_block(double drop_height) {
    BlockSystem sys = base_system();
    sys.add_block({{-0.5, drop_height}, {0.5, drop_height},
                   {0.5, drop_height + 1.0}, {-0.5, drop_height + 1.0}},
                  0);
    return sys;
}

} // namespace gdda::models

#include "trace/profile.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <utility>

#include "obs/record.hpp"

namespace gdda::trace {

namespace {

std::string_view module_label(int module) {
    if (module >= 0 && module < obs::kModuleCount)
        return obs::kModuleKeys[static_cast<std::size_t>(module)];
    return "-";
}

void accumulate_kernel(std::map<std::pair<std::string, int>, KernelRow>& rows,
                       const Event& e) {
    KernelRow& row = rows[{e.name, e.module}];
    if (row.calls == 0) {
        row.name = e.name;
        row.module = e.module;
        row.warp = e.cat == Category::Warp;
    }
    row.calls += 1;
    row.launches += e.kernel.launches;
    row.modeled_us += e.kernel.modeled_us;
    row.flops += e.kernel.flops;
    row.bytes_coalesced += e.kernel.bytes_coalesced;
    row.bytes_texture += e.kernel.bytes_texture;
    row.bytes_random += e.kernel.bytes_random;
    row.depth += e.kernel.depth;
    row.branch_slots += e.kernel.branch_slots;
    row.divergent_slots += e.kernel.divergent_slots;
    row.warps += e.kernel.warps;
    row.occupancy_sum += e.kernel.occupancy;
}

TreeNode& find_or_create_child(TreeNode& parent, Category cat, const std::string& name,
                               int module) {
    for (TreeNode& c : parent.children)
        if (c.cat == cat && c.name == name) return c;
    TreeNode child;
    child.name = name;
    child.cat = cat;
    child.module = module;
    parent.children.push_back(std::move(child));
    return parent.children.back();
}

std::string format_us(double us) {
    char buf[48];
    if (us >= 1e6)
        std::snprintf(buf, sizeof buf, "%.3fs", us * 1e-6);
    else if (us >= 1e3)
        std::snprintf(buf, sizeof buf, "%.3fms", us * 1e-3);
    else
        std::snprintf(buf, sizeof buf, "%.2fus", us);
    return buf;
}

} // namespace

Profile Profile::from_events(const std::vector<Event>& events) {
    Profile p;
    p.root_.name = "trace";
    p.root_.cat = Category::Other;
    p.root_.count = 1;

    std::map<std::pair<std::string, int>, KernelRow> rows;

    // Open-span bookkeeping for the tree replay, one stack per emitting
    // thread lane (Event::tid): spans from different sched workers interleave
    // in the ring but only nest within their own lane. All lanes share one
    // tree — the loop view aggregates over workers. Only the top node's
    // children vector ever mutates while it is on a stack, so raw pointers
    // into the tree stay valid for every stacked ancestor.
    struct Open {
        std::uint32_t id;
        TreeNode* node;
        double begin_us;
        Category cat;
    };
    std::map<std::uint32_t, std::vector<Open>> stacks;
    auto top = [&](std::uint32_t tid) -> TreeNode& {
        std::vector<Open>& stack = stacks[tid];
        return stack.empty() ? p.root_ : *stack.back().node;
    };

    for (const Event& e : events) {
        switch (e.phase) {
            case Phase::Begin: {
                TreeNode& node = find_or_create_child(top(e.tid), e.cat, e.name, e.module);
                node.count += 1;
                if (e.module >= 0) node.module = e.module;
                stacks[e.tid].push_back({e.id, &node, e.t_us, e.cat});
                break;
            }
            case Phase::End: {
                // Pop through abandoned spans (tracer::end semantics); spans
                // whose Begin was lost to wraparound just miss their wall time.
                std::vector<Open>& stack = stacks[e.tid];
                while (!stack.empty()) {
                    const Open open = stack.back();
                    stack.pop_back();
                    if (open.id != e.id) continue;
                    const double dur = e.t_us - open.begin_us;
                    open.node->total_us += dur;
                    if (open.cat == Category::Step) p.step_wall_us_ += dur;
                    break;
                }
                break;
            }
            case Phase::Complete: {
                if (e.cat == Category::Kernel || e.cat == Category::Warp) {
                    accumulate_kernel(rows, e);
                } else {
                    // Retroactive spans (e.g. the diag/nondiag module split)
                    // show up in the tree like closed children of the current
                    // span.
                    TreeNode& node =
                        find_or_create_child(top(e.tid), e.cat, e.name, e.module);
                    node.count += 1;
                    if (e.module >= 0) node.module = e.module;
                    node.total_us += e.dur_us;
                }
                break;
            }
            case Phase::Instant:
                break;
        }
    }

    p.kernels_.reserve(rows.size());
    for (auto& [key, row] : rows) p.kernels_.push_back(std::move(row));
    std::stable_sort(p.kernels_.begin(), p.kernels_.end(),
                     [](const KernelRow& a, const KernelRow& b) {
                         if (a.modeled_us != b.modeled_us) return a.modeled_us > b.modeled_us;
                         return a.name < b.name;
                     });
    return p;
}

bool Profile::from_chrome(const obs::JsonValue& doc, Profile& out, std::string* err) {
    const obs::JsonValue* trace_events = doc.find("traceEvents");
    if (!trace_events || !trace_events->is_array()) {
        if (err) *err = "missing 'traceEvents' array";
        return false;
    }

    // Reconstruct Events from the exported rows; ids are recovered from the
    // begin args so the tree replay can match B/E pairs.
    std::vector<Event> events;
    events.reserve(trace_events->items().size());
    std::uint64_t seq = 0;
    // Per-lane open spans (name -> id): merged batch traces interleave
    // lanes, and an E row only ever closes a span of its own lane.
    std::map<std::uint32_t, std::vector<std::pair<std::string, std::uint32_t>>> open_lanes;
    std::uint32_t synth_id = 1u << 30; // for id-less traces

    auto category_of = [](const std::string& s) {
        for (int c = 0; c < kCategoryCount; ++c)
            if (category_name(static_cast<Category>(c)) == s)
                return static_cast<Category>(c);
        return Category::Other;
    };

    for (const obs::JsonValue& row : trace_events->items()) {
        if (!row.is_object()) {
            if (err) *err = "traceEvents entry is not an object";
            return false;
        }
        const obs::JsonValue* ph = row.find("ph");
        const obs::JsonValue* name = row.find("name");
        const obs::JsonValue* cat = row.find("cat");
        const obs::JsonValue* ts = row.find("ts");
        if (!ph || !ph->is_string() || !ts || !ts->is_number()) {
            if (err) *err = "traceEvents entry lacks 'ph'/'ts'";
            return false;
        }
        Event e;
        e.seq = ++seq;
        e.t_us = ts->as_number();
        if (const obs::JsonValue* tid = row.find("tid"); tid && tid->is_number())
            e.tid = static_cast<std::uint32_t>(tid->as_number());
        if (name && name->is_string()) e.name = name->as_string();
        if (cat && cat->is_string()) e.cat = category_of(cat->as_string());
        const obs::JsonValue* args = row.find("args");
        if (args && args->is_object()) {
            if (const obs::JsonValue* m = args->find("module"); m && m->is_number())
                e.module = static_cast<int>(m->as_number());
        }

        const std::string& phase = ph->as_string();
        if (phase == "B") {
            e.phase = Phase::Begin;
            e.id = ++synth_id;
            if (args && args->is_object())
                if (const obs::JsonValue* s = args->find("span"); s && s->is_number())
                    e.id = static_cast<std::uint32_t>(s->as_number());
            open_lanes[e.tid].emplace_back(e.name, e.id);
        } else if (phase == "E") {
            e.phase = Phase::End;
            // Chrome E rows do not carry the span id; close the innermost
            // open span of this lane with a matching name (LIFO, as the
            // exporter emits).
            auto& open = open_lanes[e.tid];
            std::uint32_t id = 0;
            for (auto it = open.rbegin(); it != open.rend(); ++it) {
                if (!e.name.empty() && it->first != e.name) continue;
                id = it->second;
                open.erase(std::next(it).base());
                break;
            }
            if (id == 0) continue; // unmatched E; exporter never emits these
            e.id = id;
        } else if (phase == "X") {
            e.phase = Phase::Complete;
            if (const obs::JsonValue* dur = row.find("dur"); dur && dur->is_number())
                e.dur_us = dur->as_number();
            if ((e.cat == Category::Kernel || e.cat == Category::Warp) && args &&
                args->is_object()) {
                auto num = [&](const char* key) {
                    const obs::JsonValue* v = args->find(key);
                    return v && v->is_number() ? v->as_number() : 0.0;
                };
                e.kernel.modeled_us = num("modeled_us");
                e.kernel.flops = num("flops");
                e.kernel.bytes_coalesced = num("bytes_coalesced");
                e.kernel.bytes_texture = num("bytes_texture");
                e.kernel.bytes_random = num("bytes_random");
                e.kernel.depth = num("depth");
                e.kernel.branch_slots = num("branch_slots");
                e.kernel.divergent_slots = num("divergent_slots");
                e.kernel.warps = num("warps");
                e.kernel.occupancy = num("occupancy");
                e.kernel.launches = static_cast<long long>(num("launches"));
            }
        } else if (phase == "i" || phase == "I") {
            e.phase = Phase::Instant;
        } else {
            continue; // metadata rows (M, ...) are fine to skip
        }
        events.push_back(std::move(e));
    }

    out = from_events(events);
    return true;
}

double Profile::total_modeled_us() const {
    double t = 0.0;
    for (const KernelRow& r : kernels_) t += r.modeled_us;
    return t;
}

simt::KernelCost Profile::module_cost(int module) const {
    simt::KernelCost total{.name = {}, .launches = 0};
    for (const KernelRow& r : kernels_) {
        if (r.warp || r.module != module) continue;
        total.flops += r.flops;
        total.bytes_coalesced += r.bytes_coalesced;
        total.bytes_texture += r.bytes_texture;
        total.bytes_random += r.bytes_random;
        total.depth += r.depth;
        total.branch_slots += r.branch_slots;
        total.divergent_slots += r.divergent_slots;
        total.launches += static_cast<int>(r.launches);
    }
    return total;
}

double Profile::module_modeled_us(int module) const {
    double t = 0.0;
    for (const KernelRow& r : kernels_)
        if (!r.warp && r.module == module) t += r.modeled_us;
    return t;
}

std::string Profile::render_kernel_table(std::size_t max_rows) const {
    const double total = total_modeled_us();
    std::string out;
    char line[256];
    std::snprintf(line, sizeof line, "%8s %12s %8s %12s %7s %7s  %-22s %s\n",
                  "Time(%)", "Time", "Calls", "Avg", "Div(%)", "Coal(%)", "Module",
                  "Name");
    out += line;
    std::size_t shown = 0;
    for (const KernelRow& r : kernels_) {
        if (max_rows && shown >= max_rows) {
            std::snprintf(line, sizeof line, "  ... %zu more rows\n",
                          kernels_.size() - shown);
            out += line;
            break;
        }
        const double pct = total > 0.0 ? 100.0 * r.modeled_us / total : 0.0;
        std::snprintf(line, sizeof line, "%7.2f%% %12s %8lld %12s %7.2f %7.2f  %-22.*s %s%s\n",
                      pct, format_us(r.modeled_us).c_str(), r.calls,
                      format_us(r.avg_us()).c_str(), r.divergence_pct(),
                      r.coalesced_pct(), static_cast<int>(module_label(r.module).size()),
                      module_label(r.module).data(), r.name.c_str(),
                      r.warp ? " [warp]" : "");
        out += line;
        ++shown;
    }
    if (kernels_.empty()) out += "  (no kernel events)\n";
    return out;
}

namespace {

void render_node(const TreeNode& node, int depth, int max_depth, std::string& out) {
    if (max_depth > 0 && depth > max_depth) return;
    char line[256];
    std::snprintf(line, sizeof line, "%*s%s [%s]  count=%lld  total=%s%s\n", 2 * depth,
                  "", node.name.c_str(), std::string(category_name(node.cat)).c_str(),
                  node.count, format_us(node.total_us).c_str(),
                  node.count > 1
                      ? ("  avg=" + format_us(node.total_us /
                                              static_cast<double>(node.count)))
                            .c_str()
                      : "");
    out += line;
    for (const TreeNode& c : node.children) render_node(c, depth + 1, max_depth, out);
}

} // namespace

std::string Profile::render_loop_tree(int max_depth) const {
    std::string out;
    if (root_.children.empty()) return "  (no span events)\n";
    for (const TreeNode& c : root_.children) render_node(c, 0, max_depth, out);
    return out;
}

} // namespace gdda::trace

#include "trace/chrome_export.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <set>

namespace gdda::trace {

namespace {

using obs::JsonValue;

JsonValue kernel_args(const Event& e) {
    JsonValue a = JsonValue::object();
    a.set("modeled_us", JsonValue::number(e.kernel.modeled_us));
    a.set("flops", JsonValue::number(e.kernel.flops));
    a.set("bytes_coalesced", JsonValue::number(e.kernel.bytes_coalesced));
    a.set("bytes_texture", JsonValue::number(e.kernel.bytes_texture));
    a.set("bytes_random", JsonValue::number(e.kernel.bytes_random));
    a.set("depth", JsonValue::number(e.kernel.depth));
    a.set("branch_slots", JsonValue::number(e.kernel.branch_slots));
    a.set("divergent_slots", JsonValue::number(e.kernel.divergent_slots));
    a.set("warps", JsonValue::number(e.kernel.warps));
    a.set("occupancy", JsonValue::number(e.kernel.occupancy));
    a.set("launches", JsonValue::integer(e.kernel.launches));
    a.set("module", JsonValue::integer(e.module));
    return a;
}

JsonValue event_json(const Event& e, const char* ph) {
    JsonValue j = JsonValue::object();
    j.set("name", JsonValue::string(e.name));
    j.set("cat", JsonValue::string(std::string(category_name(e.cat))));
    j.set("ph", JsonValue::string(ph));
    j.set("ts", JsonValue::number(e.t_us));
    j.set("pid", JsonValue::integer(1));
    // Lane 0 (hand-built events) renders as lane 1 so single-threaded traces
    // keep their historical tid.
    j.set("tid", JsonValue::integer(e.tid ? e.tid : 1));
    return j;
}

} // namespace

JsonValue chrome_trace_document(const std::vector<Event>& events, const TraceConfig& cfg,
                                std::uint64_t dropped) {
    // Repair pass: wraparound can strand End events without their Begin and
    // leave Begins seen but never closed inside the retained window.
    std::set<std::uint32_t> open;          // begins seen, not yet ended
    std::set<std::uint32_t> known_begins;  // all begins in the window
    double last_ts = 0.0;
    for (const Event& e : events) {
        last_ts = std::max(last_ts, e.t_us + e.dur_us);
        if (e.phase == Phase::Begin) {
            open.insert(e.id);
            known_begins.insert(e.id);
        } else if (e.phase == Phase::End) {
            open.erase(e.id);
        }
    }

    struct Row {
        double ts;
        std::uint64_t seq;
        JsonValue json;
        bool operator<(const Row& o) const {
            return ts != o.ts ? ts < o.ts : seq < o.seq;
        }
    };
    std::vector<Row> rows;
    rows.reserve(events.size() + open.size());
    // Names of begins, so synthesized closes and End rows can carry them
    // (chrome tolerates nameless E events; our validator likes them named).
    std::map<std::uint32_t, const Event*> begin_by_id;
    for (const Event& e : events)
        if (e.phase == Phase::Begin) begin_by_id.emplace(e.id, &e);

    auto find_begin = [&](std::uint32_t id) -> const Event* {
        const auto it = begin_by_id.find(id);
        return it == begin_by_id.end() ? nullptr : it->second;
    };

    for (const Event& e : events) {
        switch (e.phase) {
            case Phase::Begin: {
                JsonValue j = event_json(e, "B");
                JsonValue args = JsonValue::object();
                args.set("span", JsonValue::integer(e.id));
                args.set("parent", JsonValue::integer(e.parent));
                if (e.module >= 0) args.set("module", JsonValue::integer(e.module));
                j.set("args", std::move(args));
                rows.push_back({e.t_us, e.seq, std::move(j)});
                break;
            }
            case Phase::End: {
                if (!known_begins.count(e.id)) break; // begin lost to wraparound
                const Event* b = find_begin(e.id);
                Event named = e;
                if (b) {
                    named.name = b->name;
                    named.cat = b->cat;
                }
                rows.push_back({e.t_us, e.seq, event_json(named, "E")});
                break;
            }
            case Phase::Complete: {
                JsonValue j = event_json(e, "X");
                j.set("dur", JsonValue::number(e.dur_us));
                if (e.cat == Category::Kernel || e.cat == Category::Warp)
                    j.set("args", kernel_args(e));
                rows.push_back({e.t_us, e.seq, std::move(j)});
                break;
            }
            case Phase::Instant: {
                JsonValue j = event_json(e, "i");
                j.set("s", JsonValue::string("t"));
                rows.push_back({e.t_us, e.seq, std::move(j)});
                break;
            }
        }
    }
    // Close anything still open at the last seen timestamp. Deeper spans were
    // opened later (larger seq/id), so close them first: iterate descending.
    std::uint64_t synth_seq = events.empty() ? 0 : events.back().seq;
    for (auto it = open.rbegin(); it != open.rend(); ++it) {
        const Event* b = find_begin(*it);
        Event e;
        e.id = *it;
        e.t_us = last_ts;
        if (b) {
            e.name = b->name;
            e.cat = b->cat;
            e.tid = b->tid;
        }
        rows.push_back({last_ts, ++synth_seq, event_json(e, "E")});
    }

    std::stable_sort(rows.begin(), rows.end());

    JsonValue trace_events = JsonValue::array();
    for (Row& r : rows) trace_events.push(std::move(r.json));

    JsonValue other = JsonValue::object();
    other.set("device", JsonValue::string(
                            std::string(device_profile_by_name(cfg.device).name)));
    other.set("dropped_events", JsonValue::integer(static_cast<long long>(dropped)));
    other.set("ring_capacity",
              JsonValue::integer(static_cast<long long>(cfg.ring_capacity)));

    JsonValue doc = JsonValue::object();
    doc.set("schema", JsonValue::string(std::string(kTraceSchemaName)));
    doc.set("version", JsonValue::integer(kTraceSchemaVersion));
    doc.set("displayTimeUnit", JsonValue::string("ms"));
    doc.set("otherData", std::move(other));
    doc.set("traceEvents", std::move(trace_events));
    return doc;
}

JsonValue chrome_trace_document(const Tracer& tracer) {
    return chrome_trace_document(tracer.snapshot(), tracer.config(),
                                 tracer.events_dropped());
}

bool write_chrome_trace(const std::string& path, const Tracer& tracer, std::string* err) {
    std::ofstream out(path, std::ios::out | std::ios::trunc);
    if (!out) {
        if (err) *err = "cannot open '" + path + "' for writing";
        return false;
    }
    out << chrome_trace_document(tracer).dump() << '\n';
    if (!out) {
        if (err) *err = "write to '" + path + "' failed";
        return false;
    }
    return true;
}

} // namespace gdda::trace

#pragma once
// Structural validation for exported Chrome trace files: obs_validate --trace
// and the CI smoke run pipe gdda's .trace.json output through here so the
// exporter's guarantees (balanced begin/end pairs, monotonic timestamps,
// known categories and phases) cannot silently regress.

#include <string>
#include <string_view>

#include "obs/json.hpp"

namespace gdda::trace {

struct TraceValidation {
    bool ok = false;
    int events = 0;    ///< valid trace events seen before stopping
    int bad_event = 0; ///< 1-based index of the first bad event (0 when ok)
    std::string error; ///< empty when ok

    explicit operator bool() const { return ok; }
};

/// Validate a parsed trace document (the chrome_trace_document output shape).
/// Checks: "traceEvents" is an array; every event is an object with a string
/// "name", a known "cat", a "ph" in {B, E, X, i}, and a finite "ts";
/// timestamps never decrease in file order; X events carry a finite "dur"
/// >= 0; B/E pairs balance with strict LIFO nesting and nothing stays open.
TraceValidation validate_trace_document(const obs::JsonValue& doc);

/// Parse + validate a complete trace JSON text.
TraceValidation validate_trace_text(std::string_view text);

/// Convenience wrapper: open `path`, parse, validate. A missing or
/// unreadable file fails validation.
TraceValidation validate_trace_file(const std::string& path);

} // namespace gdda::trace

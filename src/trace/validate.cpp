#include "trace/validate.hpp"

#include <cmath>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

#include "trace/tracer.hpp"

namespace gdda::trace {

namespace {

bool known_category(const std::string& s) {
    for (int c = 0; c < kCategoryCount; ++c)
        if (category_name(static_cast<Category>(c)) == s) return true;
    return false;
}

TraceValidation fail(int index, std::string message) {
    TraceValidation v;
    v.ok = false;
    v.events = index - 1;
    v.bad_event = index;
    v.error = "event " + std::to_string(index) + ": " + std::move(message);
    return v;
}

} // namespace

TraceValidation validate_trace_document(const obs::JsonValue& doc) {
    TraceValidation v;
    if (!doc.is_object()) {
        v.error = "trace document is not a JSON object";
        return v;
    }
    const obs::JsonValue* trace_events = doc.find("traceEvents");
    if (!trace_events || !trace_events->is_array()) {
        v.error = "missing 'traceEvents' array";
        return v;
    }

    double last_ts = -std::numeric_limits<double>::infinity();
    // Span nesting is only meaningful within one (pid, tid) lane: traces
    // merged from several sched workers interleave lanes freely, but each
    // lane's B/E events must still stack LIFO.
    std::map<std::pair<long long, long long>, std::vector<std::string>> open;
    int index = 0;
    for (const obs::JsonValue& row : trace_events->items()) {
        ++index;
        if (!row.is_object()) return fail(index, "not an object");

        const obs::JsonValue* name = row.find("name");
        if (!name || !name->is_string()) return fail(index, "missing string 'name'");

        const obs::JsonValue* cat = row.find("cat");
        if (!cat || !cat->is_string()) return fail(index, "missing string 'cat'");
        if (!known_category(cat->as_string()))
            return fail(index, "unknown category '" + cat->as_string() + "'");

        const obs::JsonValue* ph = row.find("ph");
        if (!ph || !ph->is_string()) return fail(index, "missing string 'ph'");
        const std::string& phase = ph->as_string();
        if (phase != "B" && phase != "E" && phase != "X" && phase != "i")
            return fail(index, "unknown phase '" + phase + "'");

        const obs::JsonValue* ts = row.find("ts");
        if (!ts || !ts->is_number()) return fail(index, "missing numeric 'ts'");
        if (!std::isfinite(ts->as_number())) return fail(index, "'ts' is not finite");
        if (ts->as_number() < last_ts)
            return fail(index, "timestamp decreases (ts=" + std::to_string(ts->as_number()) +
                                   " after " + std::to_string(last_ts) + ")");
        last_ts = ts->as_number();

        auto lane_key = [&row]() {
            const obs::JsonValue* pid = row.find("pid");
            const obs::JsonValue* tid = row.find("tid");
            return std::make_pair(pid && pid->is_number()
                                      ? static_cast<long long>(pid->as_number()) : 1LL,
                                  tid && tid->is_number()
                                      ? static_cast<long long>(tid->as_number()) : 1LL);
        };

        if (phase == "X") {
            const obs::JsonValue* dur = row.find("dur");
            if (!dur || !dur->is_number()) return fail(index, "X event missing numeric 'dur'");
            if (!std::isfinite(dur->as_number()) || dur->as_number() < 0.0)
                return fail(index, "X event 'dur' must be finite and >= 0");
        } else if (phase == "B") {
            open[lane_key()].push_back(name->as_string());
        } else if (phase == "E") {
            std::vector<std::string>& lane = open[lane_key()];
            if (lane.empty()) return fail(index, "E event with no open span in its lane");
            if (lane.back() != name->as_string())
                return fail(index, "E event '" + name->as_string() +
                                       "' does not close innermost span '" + lane.back() +
                                       "' of its lane");
            lane.pop_back();
        }
        ++v.events;
    }

    for (const auto& [lane, names] : open) {
        if (names.empty()) continue;
        v.bad_event = index;
        v.error = std::to_string(names.size()) + " span(s) still open at end of trace ('" +
                  names.back() + "' innermost, tid " + std::to_string(lane.second) + ")";
        return v;
    }
    v.ok = true;
    return v;
}

TraceValidation validate_trace_text(std::string_view text) {
    obs::JsonValue doc;
    std::string err;
    if (!obs::JsonValue::parse(text, doc, &err)) {
        TraceValidation v;
        v.error = "JSON parse error: " + err;
        return v;
    }
    return validate_trace_document(doc);
}

TraceValidation validate_trace_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
        TraceValidation v;
        v.error = "cannot open '" + path + "'";
        return v;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    return validate_trace_text(buf.str());
}

} // namespace gdda::trace

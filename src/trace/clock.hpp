#pragma once
// The single monotonic clock of the tracing subsystem. Both trace spans and
// core::ScopedTimer (and through it the paper's ModuleTimers) read this
// clock, so module wall-time accounting and span durations come from the same
// time source and can never disagree about what "now" means.

namespace gdda::trace {

/// Microseconds since the first call in this process. Monotonic
/// (steady_clock-backed), never negative.
[[nodiscard]] double now_us();

} // namespace gdda::trace

#pragma once
// In-process profile built from a trace: an nvprof-style kernel-launch table
// (calls, launches, total/avg modeled time, time share, divergence and
// coalescing rates, per pipeline module) and a top-down loop-tree view of the
// span hierarchy (step -> displacement pass -> open-close iteration ->
// module -> solve -> PCG iteration) with call counts and inclusive wall
// time. Powers the gdda-prof CLI and the trace<->CostLedger agreement tests.

#include <array>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "trace/tracer.hpp"

namespace gdda::trace {

struct KernelRow {
    std::string name;
    int module = -1;          ///< core::Module row; -1 when unattributed
    bool warp = false;        ///< lane-accurate WarpExecutor row (synthetic
                              ///< cost fields; excluded from module_cost)
    long long calls = 0;      ///< trace events (record_kernel / warp launches)
    long long launches = 0;   ///< device launches represented by those calls
    double modeled_us = 0.0;  ///< summed SIMT-modeled time
    double flops = 0.0;
    double bytes_coalesced = 0.0;
    double bytes_texture = 0.0;
    double bytes_random = 0.0;
    double depth = 0.0;
    double branch_slots = 0.0;
    double divergent_slots = 0.0;
    double warps = 0.0;
    double occupancy_sum = 0.0; ///< per-call occupancy, summed (avg = /calls)

    [[nodiscard]] double divergence_pct() const {
        return branch_slots > 0.0 ? 100.0 * divergent_slots / branch_slots : 0.0;
    }
    [[nodiscard]] double coalesced_pct() const {
        const double total = bytes_coalesced + bytes_texture + bytes_random;
        return total > 0.0 ? 100.0 * (bytes_coalesced + bytes_texture) / total : 100.0;
    }
    [[nodiscard]] double avg_us() const {
        return calls > 0 ? modeled_us / static_cast<double>(calls) : 0.0;
    }
};

/// Aggregated span-tree node: spans with the same (name, category) under the
/// same parent path collapse into one node with a call count.
struct TreeNode {
    std::string name;
    Category cat = Category::Other;
    int module = -1;
    long long count = 0;
    double total_us = 0.0; ///< inclusive wall time summed over occurrences
    std::vector<TreeNode> children;
};

class Profile {
public:
    /// Build from a chronological event snapshot (Tracer::snapshot()).
    static Profile from_events(const std::vector<Event>& events);
    static Profile from_tracer(const Tracer& tracer) {
        return from_events(tracer.snapshot());
    }
    /// Rebuild from an exported Chrome trace document (round trip for the
    /// gdda-prof report mode). Returns false and fills `err` on malformed
    /// documents — run validate.hpp first for a precise diagnosis.
    static bool from_chrome(const obs::JsonValue& doc, Profile& out,
                            std::string* err = nullptr);

    /// Kernel rows sorted by total modeled time, descending.
    [[nodiscard]] const std::vector<KernelRow>& kernels() const { return kernels_; }
    [[nodiscard]] double total_modeled_us() const;
    /// Trace-side accumulation for one pipeline module; matches the engine's
    /// CostLedger totals up to floating-point summation order.
    [[nodiscard]] simt::KernelCost module_cost(int module) const;
    [[nodiscard]] double module_modeled_us(int module) const;

    [[nodiscard]] const TreeNode& root() const { return root_; }
    /// Total wall time of Step spans (the denominator of "% of step").
    [[nodiscard]] double step_wall_us() const { return step_wall_us_; }

    /// nvprof-like launch table (text).
    [[nodiscard]] std::string render_kernel_table(std::size_t max_rows = 0) const;
    /// Indented top-down loop tree with counts and inclusive wall time.
    [[nodiscard]] std::string render_loop_tree(int max_depth = 0) const;

private:
    std::vector<KernelRow> kernels_;
    TreeNode root_;
    double step_wall_us_ = 0.0;
};

} // namespace gdda::trace

#pragma once
// gdda::trace — hierarchical span tracing + SIMT kernel-launch capture for
// the DDA pipeline. One span per time step (loop 1), displacement-control
// pass (loop 2), open-close iteration (loop 3), module, linear solve, and
// PCG iteration, plus one complete event per SIMT kernel launch (captured
// through the simt::KernelTraceHook that record_kernel and
// WarpExecutor::launch feed). Events land in a thread-safe ring buffer;
// exporters (chrome_export.hpp) and the profile aggregator (profile.hpp)
// consume chronological snapshots. Span nesting is tracked on a per-thread
// stack (one lane per emitting thread, stamped into Event::tid), so a tracer
// shared by several threads — or one tracer per sched worker merged later —
// yields structurally valid parent/child chains for every lane.
//
// Overhead contract: with no tracer attached, a Span construction is one
// null check; with the tracer attached but the ring disabled-sized, each
// span costs two small mutex-guarded pushes. bench_trace_overhead guards
// this.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "simt/cost_model.hpp"
#include "simt/trace_hook.hpp"
#include "simt/warp_executor.hpp"
#include "trace/clock.hpp"
#include "trace/config.hpp"

namespace gdda::trace {

/// Event taxonomy; category_name() gives the strings used in exported files
/// and validated by validate.hpp. Step/Pass/OpenClose mirror the paper's
/// three nested loops.
enum class Category : std::uint8_t {
    Step = 0,      ///< loop 1: one physical time step
    Pass,          ///< loop 2: one displacement-control attempt
    OpenClose,     ///< loop 3: one open-close iteration (assemble+solve)
    Module,        ///< one of the six Table II/III pipeline modules
    Solve,         ///< one linear solve (PCG call)
    PcgIteration,  ///< one PCG iteration
    Kernel,        ///< analytic SIMT kernel launch (modeled duration)
    Warp,          ///< lane-accurate WarpExecutor launch (measured stats)
    Other,
};
inline constexpr int kCategoryCount = 9;
[[nodiscard]] std::string_view category_name(Category c);

enum class Phase : std::uint8_t { Begin, End, Complete, Instant };

/// Per-launch payload of Kernel/Warp events.
struct KernelStats {
    double modeled_us = 0.0;       ///< SIMT-modeled device time (Kernel only)
    double flops = 0.0;
    double bytes_coalesced = 0.0;
    double bytes_texture = 0.0;
    double bytes_random = 0.0;
    double depth = 0.0;
    double branch_slots = 0.0;
    double divergent_slots = 0.0;
    double warps = 0.0;            ///< warp count (measured or est. from slots)
    /// Throughput-bound share of the modeled time: 1 means the launch is
    /// pure roofline work, 0 means pure launch overhead + latency chain.
    double occupancy = 0.0;
    long long launches = 0;

    [[nodiscard]] double divergent_fraction() const {
        return branch_slots > 0.0 ? divergent_slots / branch_slots : 0.0;
    }
    /// Coalesced share of the global-memory traffic (texture counts as
    /// coalesced: the paper routes irregular gathers through texture
    /// precisely to restore coalescing-grade bandwidth).
    [[nodiscard]] double coalesced_fraction() const {
        const double total = bytes_coalesced + bytes_texture + bytes_random;
        return total > 0.0 ? (bytes_coalesced + bytes_texture) / total : 1.0;
    }
};

struct Event {
    Phase phase = Phase::Instant;
    Category cat = Category::Other;
    std::uint32_t id = 0;      ///< span id (Begin/End/Complete); 0 otherwise
    std::uint32_t parent = 0;  ///< enclosing span id at emission (0 = root)
    int module = -1;           ///< core::Module row when known
    double t_us = 0.0;         ///< trace::now_us() timestamp (End: close time)
    double dur_us = 0.0;       ///< Complete events only
    std::uint64_t seq = 0;     ///< global emission order (survives wraparound)
    /// Emitting thread's lane within this tracer (1-based, assigned in
    /// first-emission order; 0 in hand-built events means lane 1). Span
    /// nesting is only meaningful within one tid: each thread keeps its own
    /// span stack, so spans from concurrent workers never adopt each other
    /// as parents and exported traces stay structurally valid per lane.
    std::uint32_t tid = 0;
    std::string name;
    KernelStats kernel;        ///< Kernel/Warp events only
};

class Tracer final : public simt::KernelTraceHook {
public:
    explicit Tracer(TraceConfig cfg = {});
    ~Tracer() override;

    /// Mirror of obs::Recorder::from_config: nullptr when cfg.enabled is
    /// false. Does NOT install the kernel hook — engines do that so the hook
    /// ownership follows the engine actually running.
    static std::shared_ptr<Tracer> from_config(const TraceConfig& cfg);

    // -- span API -----------------------------------------------------------
    /// Open a span; returns its id. `t_us < 0` samples the trace clock —
    /// callers that already read the clock (ScopedTimer) pass their sample so
    /// timer seconds and span durations are computed from identical reads.
    std::uint32_t begin(Category cat, std::string_view name, int module = -1,
                        double t_us = -1.0);
    void end(std::uint32_t id, double t_us = -1.0);
    /// Retroactive span (begin time + duration known after the fact); used
    /// where one timed region is split into several module rows.
    void complete(Category cat, std::string_view name, double t_start_us, double dur_us,
                  int module = -1);
    void instant(Category cat, std::string_view name);

    // -- simt::KernelTraceHook ----------------------------------------------
    void on_kernel(const simt::KernelCost& cost, int module) override;
    void on_warp_launch(std::string_view name, std::size_t threads, int warp_size,
                        const simt::WarpStats& stats) override;

    /// Register as the CALLING THREAD's simt kernel hook (replacing any
    /// other); the destructor (and uninstall) clear the calling thread's
    /// slot only if it still points here. Engines re-install at the top of
    /// every step(), so the hook follows the thread actually stepping.
    void install_kernel_hook();
    void uninstall_kernel_hook();

    // -- inspection ---------------------------------------------------------
    /// Innermost open span of the CALLING thread's span stack; 0 when none.
    [[nodiscard]] std::uint32_t current_span() const;
    /// Innermost open span carrying a module row (calling thread); -1 when none.
    [[nodiscard]] int current_module() const;
    /// Chronological copy of the retained events (oldest first).
    [[nodiscard]] std::vector<Event> snapshot() const;
    [[nodiscard]] std::uint64_t events_seen() const;
    [[nodiscard]] std::uint64_t events_dropped() const;
    [[nodiscard]] const TraceConfig& config() const { return cfg_; }
    [[nodiscard]] const simt::DeviceProfile& device() const { return *dev_; }

private:
    struct OpenSpan {
        std::uint32_t id;
        int module;
    };
    /// Per-thread span lane: its 1-based tid and its own open-span stack.
    /// All access happens under mu_; the map is keyed by std::thread::id so
    /// any thread emitting through a shared tracer gets (and keeps) its lane.
    struct ThreadLane {
        std::uint32_t tid = 0;
        std::vector<OpenSpan> stack;
    };

    void push_locked(Event&& e);
    [[nodiscard]] ThreadLane& lane_locked();
    [[nodiscard]] const ThreadLane* lane_of_caller_locked() const;
    [[nodiscard]] static int module_of(const std::vector<OpenSpan>& stack) {
        for (auto it = stack.rbegin(); it != stack.rend(); ++it)
            if (it->module >= 0) return it->module;
        return -1;
    }

    TraceConfig cfg_;
    const simt::DeviceProfile* dev_;
    mutable std::mutex mu_;
    std::vector<Event> ring_;
    std::size_t head_ = 0;  ///< oldest retained event once the ring is full
    std::uint64_t seq_ = 0;
    std::uint64_t dropped_ = 0;
    std::uint32_t next_id_ = 1;
    std::uint32_t next_tid_ = 1;
    std::unordered_map<std::thread::id, ThreadLane> lanes_;
};

/// RAII span handle. Every operation is a single branch when `tracer` is
/// null, so untraced runs pay near-zero cost. Movable (the moved-from handle
/// becomes inert); copying is deleted because a span must close exactly once.
class Span {
public:
    Span() = default;
    Span(Tracer* tracer, Category cat, std::string_view name, int module = -1)
        : tracer_(tracer), id_(tracer ? tracer->begin(cat, name, module) : 0) {}
    Span(Span&& o) noexcept : tracer_(o.tracer_), id_(o.id_) { o.tracer_ = nullptr; }
    Span& operator=(Span&& o) noexcept {
        if (this != &o) {
            close();
            tracer_ = o.tracer_;
            id_ = o.id_;
            o.tracer_ = nullptr;
        }
        return *this;
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span() { close(); }

    /// End the span early (idempotent). `t_us < 0` samples the trace clock.
    void close(double t_us = -1.0) {
        if (tracer_) {
            tracer_->end(id_, t_us);
            tracer_ = nullptr;
        }
    }
    [[nodiscard]] std::uint32_t id() const { return id_; }

private:
    Tracer* tracer_ = nullptr;
    std::uint32_t id_ = 0;
};

/// Resolve "k20"/"k40" (or a full profile name) to the built-in device
/// profiles; unknown names fall back to the K40.
[[nodiscard]] const simt::DeviceProfile& device_profile_by_name(std::string_view name);

} // namespace gdda::trace

#include "trace/tracer.hpp"

#include <algorithm>
#include <chrono>

namespace gdda::trace {

double now_us() {
    using clock = std::chrono::steady_clock;
    static const clock::time_point epoch = clock::now();
    return std::chrono::duration<double, std::micro>(clock::now() - epoch).count();
}

std::string_view category_name(Category c) {
    switch (c) {
        case Category::Step: return "step";
        case Category::Pass: return "pass";
        case Category::OpenClose: return "open_close";
        case Category::Module: return "module";
        case Category::Solve: return "solve";
        case Category::PcgIteration: return "pcg_iteration";
        case Category::Kernel: return "kernel";
        case Category::Warp: return "warp";
        case Category::Other: return "other";
    }
    return "other";
}

const simt::DeviceProfile& device_profile_by_name(std::string_view name) {
    if (name == "k20" || name == "K20" || name == simt::tesla_k20().name)
        return simt::tesla_k20();
    return simt::tesla_k40();
}

Tracer::Tracer(TraceConfig cfg)
    : cfg_(std::move(cfg)), dev_(&device_profile_by_name(cfg_.device)) {
    if (cfg_.ring_capacity < 4) cfg_.ring_capacity = 4;
    ring_.reserve(std::min<std::size_t>(cfg_.ring_capacity, 1024));
}

Tracer::~Tracer() { uninstall_kernel_hook(); }

std::shared_ptr<Tracer> Tracer::from_config(const TraceConfig& cfg) {
    if (!cfg.enabled) return nullptr;
    return std::make_shared<Tracer>(cfg);
}

void Tracer::install_kernel_hook() { simt::set_kernel_trace_hook(this); }

void Tracer::uninstall_kernel_hook() {
    // Clear only the calling thread's slot, and only if it still points at
    // this tracer: an engine destroyed on the thread that stepped it leaves
    // other threads' hooks untouched.
    if (simt::kernel_trace_hook() == this) simt::set_kernel_trace_hook(nullptr);
}

Tracer::ThreadLane& Tracer::lane_locked() {
    ThreadLane& lane = lanes_[std::this_thread::get_id()];
    if (lane.tid == 0) lane.tid = next_tid_++;
    return lane;
}

const Tracer::ThreadLane* Tracer::lane_of_caller_locked() const {
    const auto it = lanes_.find(std::this_thread::get_id());
    return it == lanes_.end() ? nullptr : &it->second;
}

void Tracer::push_locked(Event&& e) {
    e.seq = seq_++;
    if (ring_.size() < cfg_.ring_capacity) {
        ring_.push_back(std::move(e));
    } else {
        ring_[head_] = std::move(e);
        head_ = (head_ + 1) % ring_.size();
        ++dropped_;
    }
}

std::uint32_t Tracer::begin(Category cat, std::string_view name, int module, double t_us) {
    if (t_us < 0.0) t_us = now_us();
    std::lock_guard<std::mutex> lock(mu_);
    ThreadLane& lane = lane_locked();
    Event e;
    e.phase = Phase::Begin;
    e.cat = cat;
    e.id = next_id_++;
    e.parent = lane.stack.empty() ? 0 : lane.stack.back().id;
    e.module = module;
    e.t_us = t_us;
    e.tid = lane.tid;
    e.name = std::string(name);
    lane.stack.push_back({e.id, module});
    push_locked(std::move(e));
    return lane.stack.back().id;
}

void Tracer::end(std::uint32_t id, double t_us) {
    if (t_us < 0.0) t_us = now_us();
    std::lock_guard<std::mutex> lock(mu_);
    ThreadLane& lane = lane_locked();
    // Pop through any spans abandoned without an explicit end (moved-from
    // handles); the matching id is the common case and pops exactly one.
    // Only this thread's lane is touched: another worker's open spans can
    // never be closed from here.
    while (!lane.stack.empty()) {
        const std::uint32_t top = lane.stack.back().id;
        lane.stack.pop_back();
        if (top == id) break;
    }
    Event e;
    e.phase = Phase::End;
    e.id = id;
    e.parent = lane.stack.empty() ? 0 : lane.stack.back().id;
    e.t_us = t_us;
    e.tid = lane.tid;
    push_locked(std::move(e));
}

void Tracer::complete(Category cat, std::string_view name, double t_start_us,
                      double dur_us, int module) {
    std::lock_guard<std::mutex> lock(mu_);
    ThreadLane& lane = lane_locked();
    Event e;
    e.phase = Phase::Complete;
    e.cat = cat;
    e.id = next_id_++;
    e.parent = lane.stack.empty() ? 0 : lane.stack.back().id;
    e.module = module;
    e.t_us = t_start_us;
    e.dur_us = std::max(dur_us, 0.0);
    e.tid = lane.tid;
    e.name = std::string(name);
    push_locked(std::move(e));
}

void Tracer::instant(Category cat, std::string_view name) {
    const double t = now_us();
    std::lock_guard<std::mutex> lock(mu_);
    ThreadLane& lane = lane_locked();
    Event e;
    e.phase = Phase::Instant;
    e.cat = cat;
    e.parent = lane.stack.empty() ? 0 : lane.stack.back().id;
    e.t_us = t;
    e.tid = lane.tid;
    e.name = std::string(name);
    push_locked(std::move(e));
}

void Tracer::on_kernel(const simt::KernelCost& cost, int module) {
    const simt::ModeledTimeParts parts = simt::modeled_parts(cost, *dev_);
    const double total_ms = parts.total_ms();
    const double t = now_us();
    std::lock_guard<std::mutex> lock(mu_);
    ThreadLane& lane = lane_locked();
    Event e;
    e.phase = Phase::Complete;
    e.cat = Category::Kernel;
    e.id = next_id_++;
    e.parent = lane.stack.empty() ? 0 : lane.stack.back().id;
    e.module = module >= 0 ? module : module_of(lane.stack);
    e.tid = lane.tid;
    e.t_us = t;
    e.dur_us = total_ms * 1e3;
    e.name = cost.name.empty() ? std::string("kernel") : cost.name;
    e.kernel.modeled_us = total_ms * 1e3;
    e.kernel.flops = cost.flops;
    e.kernel.bytes_coalesced = cost.bytes_coalesced;
    e.kernel.bytes_texture = cost.bytes_texture;
    e.kernel.bytes_random = cost.bytes_random;
    e.kernel.depth = cost.depth;
    e.kernel.branch_slots = cost.branch_slots;
    e.kernel.divergent_slots = cost.divergent_slots;
    // Analytic kernels do not carry a thread count; warp-branch slots per
    // launch are the closest per-launch warp-activity proxy available.
    e.kernel.warps = cost.launches > 0 ? cost.branch_slots / cost.launches
                                       : cost.branch_slots;
    e.kernel.occupancy = total_ms > 0.0 ? parts.work_ms / total_ms : 0.0;
    e.kernel.launches = cost.launches;
    push_locked(std::move(e));
}

void Tracer::on_warp_launch(std::string_view name, std::size_t threads, int warp_size,
                            const simt::WarpStats& stats) {
    const double t = now_us();
    std::lock_guard<std::mutex> lock(mu_);
    ThreadLane& lane = lane_locked();
    Event e;
    e.phase = Phase::Complete;
    e.cat = Category::Warp;
    e.id = next_id_++;
    e.parent = lane.stack.empty() ? 0 : lane.stack.back().id;
    e.module = module_of(lane.stack);
    e.tid = lane.tid;
    e.t_us = t;
    e.dur_us = 0.0;
    e.name = std::string(name);
    const std::size_t ws = warp_size > 0 ? static_cast<std::size_t>(warp_size) : 32;
    const double warps = static_cast<double>((threads + ws - 1) / ws);
    e.kernel.warps = warps;
    // Lane occupancy of the launch: full warps over allocated warp slots.
    e.kernel.occupancy =
        warps > 0.0 ? static_cast<double>(threads) / (warps * static_cast<double>(ws)) : 0.0;
    e.kernel.branch_slots = static_cast<double>(stats.branch_slots);
    e.kernel.divergent_slots = static_cast<double>(stats.divergent_slots);
    // Measured 128B transactions stand in for the byte split: the minimum
    // possible transaction count is "coalesced", the excess is "random".
    const double requests = static_cast<double>(stats.mem_requests);
    const double transactions = static_cast<double>(stats.mem_transactions);
    e.kernel.bytes_coalesced = requests * 128.0;
    e.kernel.bytes_random = std::max(transactions - requests, 0.0) * 128.0;
    e.kernel.flops = static_cast<double>(stats.warp_op_slots);
    e.kernel.launches = 1;
    push_locked(std::move(e));
}

std::uint32_t Tracer::current_span() const {
    std::lock_guard<std::mutex> lock(mu_);
    const ThreadLane* lane = lane_of_caller_locked();
    return (lane && !lane->stack.empty()) ? lane->stack.back().id : 0;
}

int Tracer::current_module() const {
    std::lock_guard<std::mutex> lock(mu_);
    const ThreadLane* lane = lane_of_caller_locked();
    return lane ? module_of(lane->stack) : -1;
}

std::vector<Event> Tracer::snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<Event> out;
    out.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i)
        out.push_back(ring_[(head_ + i) % ring_.size()]);
    return out;
}

std::uint64_t Tracer::events_seen() const {
    std::lock_guard<std::mutex> lock(mu_);
    return seq_;
}

std::uint64_t Tracer::events_dropped() const {
    std::lock_guard<std::mutex> lock(mu_);
    return dropped_;
}

} // namespace gdda::trace

#pragma once
// Tracing opt-in carried inside core::SimConfig. Kept dependency-free so the
// core config header does not pull the tracer machinery into every TU (the
// same pattern as obs::TelemetryConfig).

#include <cstddef>
#include <string>

namespace gdda::trace {

struct TraceConfig {
    bool enabled = false;
    /// When non-empty, examples/CLIs write the Chrome trace-event JSON file
    /// here at the end of the run (loadable in Perfetto / chrome://tracing).
    std::string chrome_path;
    /// Ring-buffer capacity in events. When full the oldest events are
    /// overwritten; the exporter repairs the resulting orphan span ends so
    /// the emitted file always stays balanced.
    std::size_t ring_capacity = 1 << 16;
    /// Emit one span per PCG iteration (high volume; the ring absorbs it).
    bool pcg_iteration_spans = true;
    /// Device profile used to convert analytic kernel costs into modeled
    /// event durations: "k20" or "k40".
    std::string device = "k40";
};

} // namespace gdda::trace

#pragma once
// Chrome trace-event exporter: turns a Tracer snapshot into the JSON format
// chrome://tracing and Perfetto load (the "JSON Array Format" with a
// traceEvents wrapper object). Reuses obs::JsonValue so the telemetry and
// tracing subsystems share one JSON implementation.
//
// The exporter guarantees a structurally valid file even after ring-buffer
// wraparound: span ends whose begin was overwritten are dropped, spans still
// open at export time are closed at the last seen timestamp, and events are
// emitted in timestamp order. validate.hpp checks exactly these invariants.

#include <string>
#include <vector>

#include "obs/json.hpp"
#include "trace/tracer.hpp"

namespace gdda::trace {

inline constexpr std::string_view kTraceSchemaName = "gdda.trace";
inline constexpr int kTraceSchemaVersion = 1;

/// Build the trace document: {"schema", "version", "displayTimeUnit",
/// "otherData": {device, dropped_events, ...}, "traceEvents": [...]}.
[[nodiscard]] obs::JsonValue chrome_trace_document(const std::vector<Event>& events,
                                                   const TraceConfig& cfg,
                                                   std::uint64_t dropped);
[[nodiscard]] obs::JsonValue chrome_trace_document(const Tracer& tracer);

/// Write the document for `tracer` to `path` (truncating). Returns false and
/// fills `err` when the file cannot be written.
bool write_chrome_trace(const std::string& path, const Tracer& tracer,
                        std::string* err = nullptr);

} // namespace gdda::trace

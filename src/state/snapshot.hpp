#pragma once
// gdda::state — versioned binary snapshot/restore of a complete engine.
//
// A snapshot captures everything DdaEngine::step() reads: the BlockSystem
// (vertices/velocities/stresses as raw double bits, plus materials, joints,
// boundary conditions and loads), the live contact set including spring
// memory, the PCG warm start, the construction-time scalars, the step/epoch
// counters, and the SimConfig. The contract is strict: restoring a snapshot
// and continuing is bitwise-identical to never having paused, for both
// engine modes and every solver knob — `block::state_fingerprint` is the
// oracle (docs/STATE.md has the proof sketch).
//
// The on-disk format is self-describing: a fixed header (magic, schema
// version, git sha, engine mode, step index, fingerprints) ahead of a
// length-prefixed, checksummed payload. Every field is little-endian and
// doubles travel as their raw 64 bits — no text round-trip, no precision
// loss (the older text `io::checkpoint` only achieves ~1e-9 on resume).
// Malformed input of any kind — wrong magic, future version, truncation,
// bit corruption — is rejected with a typed SnapshotError, never UB.

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>

#include "core/engine.hpp"

namespace gdda::state {

/// On-disk schema version. Bump on any layout change; readers reject
/// versions they do not understand with UnsupportedVersion.
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// Leading file magic ("GDDASNAP", 8 bytes, no terminator on disk).
inline constexpr char kSnapshotMagic[9] = "GDDASNAP";

enum class SnapshotErrorCode : std::uint8_t {
    OpenFailed,         ///< file could not be opened / created
    BadMagic,           ///< not a gdda snapshot at all
    UnsupportedVersion, ///< written by a newer (or unknown) schema
    Truncated,          ///< ran out of bytes mid-structure
    Corrupt,            ///< checksum/fingerprint mismatch or nonsense values
    Mismatch,           ///< snapshot does not fit the target engine
};

[[nodiscard]] const char* to_string(SnapshotErrorCode code);

/// Typed rejection for every malformed-input and misuse path. `code()`
/// distinguishes programmatic handling (e.g. recovery falls back to a
/// fresh run); what() carries the human-readable detail.
class SnapshotError : public std::runtime_error {
public:
    SnapshotError(SnapshotErrorCode code, const std::string& what)
        : std::runtime_error(what), code_(code) {}
    [[nodiscard]] SnapshotErrorCode code() const { return code_; }

private:
    SnapshotErrorCode code_;
};

/// Self-describing snapshot header. peek_header() reads it without
/// deserializing the payload, so tooling can triage checkpoint files
/// (which job, which step, which build) cheaply.
struct SnapshotHeader {
    std::uint32_t version = kSnapshotVersion;
    std::string git_sha;            ///< build that wrote the snapshot
    core::EngineMode mode = core::EngineMode::Serial;
    int step_index = 0;             ///< completed steps at capture time
    double time = 0.0;
    double dt = 0.0;
    std::uint64_t block_count = 0;
    std::uint64_t contact_count = 0;
    /// block::state_fingerprint of the captured system — the bitwise oracle.
    /// load_snapshot recomputes it from the decoded payload and rejects on
    /// mismatch, so a snapshot that loads is guaranteed bit-faithful.
    std::uint64_t state_fingerprint = 0;
    /// Fingerprint over the trajectory-affecting SimConfig knobs (see
    /// config_fingerprint below). restore_engine refuses a snapshot whose
    /// physics differs from the target engine's unless explicitly allowed.
    std::uint64_t config_fingerprint = 0;
};

/// A decoded snapshot: header + the stored SimConfig + the complete engine
/// state, ready for DdaEngine::restore().
struct EngineSnapshot {
    SnapshotHeader header;
    core::SimConfig config;
    core::EngineCheckpoint state;
};

/// FNV-1a over the trajectory-affecting subset of SimConfig: dt policy,
/// displacement control, penalties, iteration limits, exact_rotation,
/// preconditioner, SpMV backend, warm-start policy, and the PCG options
/// (including the mixed-precision knobs). Deliberately EXCLUDES knobs with
/// proven bitwise-identity contracts or observer-only roles: broad-phase
/// backend/cell/cache, pair classification, solver_threads, reuse_structure,
/// fused PCG, checkpoint_interval, telemetry/trace/metrics.
[[nodiscard]] std::uint64_t config_fingerprint(const core::SimConfig& cfg);

/// Capture a complete snapshot of a live engine (observer-only; the engine
/// is not perturbed).
[[nodiscard]] EngineSnapshot capture(const core::DdaEngine& engine);

/// Serialize a capture to a stream / file. The file variant writes to
/// `path + ".tmp"` and renames into place, so readers never observe a
/// half-written snapshot (crash-safe checkpointing). Throws SnapshotError
/// (OpenFailed) on I/O failure.
void save_snapshot(std::ostream& out, const EngineSnapshot& snap);
void save_snapshot_file(const std::string& path, const EngineSnapshot& snap);

/// Convenience: capture + save in one call.
void save_engine_file(const std::string& path, const core::DdaEngine& engine);

/// Deserialize and fully validate a snapshot: magic, version, payload
/// checksum, structural sanity, and the state fingerprint recomputed from
/// the decoded blocks. Throws SnapshotError on any defect.
[[nodiscard]] EngineSnapshot load_snapshot(std::istream& in);
[[nodiscard]] EngineSnapshot load_snapshot_file(const std::string& path);

/// Read only the header of a snapshot file (cheap triage). Validates magic
/// and version but not the payload.
[[nodiscard]] SnapshotHeader peek_header(const std::string& path);

/// Restore a loaded snapshot into an engine. Rejects (Mismatch) when the
/// engine mode differs, when the block count differs from the engine's
/// system, or when the trajectory-affecting config fingerprint differs —
/// unless `allow_config_mismatch` (resume-with-new-knobs is then explicitly
/// opted into and the bitwise contract is void). On success the engine
/// continues bitwise-identically to the run that wrote the snapshot.
void restore_engine(core::DdaEngine& engine, const EngineSnapshot& snap,
                    bool allow_config_mismatch = false);

} // namespace gdda::state

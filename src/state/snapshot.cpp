#include "state/snapshot.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "metrics/registry.hpp"

#ifndef GDDA_GIT_SHA
#define GDDA_GIT_SHA "unknown"
#endif

namespace gdda::state {

namespace {

// ---------------------------------------------------------------------------
// Little-endian byte codec. Doubles travel as their raw 64 bits via memcpy,
// which is exactly what the bitwise contract requires: the decoded double is
// the same object representation, not a nearest-parse of a decimal string.

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv1a(std::uint64_t& h, const void* data, std::size_t bytes) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < bytes; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
}

class ByteWriter {
public:
    void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
    void u32(std::uint32_t v) {
        for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
    void u64(std::uint64_t v) {
        for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
    void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    void f64(double v) {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        u64(bits);
    }
    void str(const std::string& s) {
        u64(s.size());
        buf_.append(s);
    }
    [[nodiscard]] const std::string& bytes() const { return buf_; }

private:
    std::string buf_;
};

class ByteReader {
public:
    ByteReader(const char* data, std::size_t size) : data_(data), size_(size) {}

    std::uint8_t u8() {
        need(1);
        return static_cast<std::uint8_t>(data_[pos_++]);
    }
    std::uint32_t u32() {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(static_cast<unsigned char>(data_[pos_++])) << (8 * i);
        return v;
    }
    std::uint64_t u64() {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(static_cast<unsigned char>(data_[pos_++])) << (8 * i);
        return v;
    }
    std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    double f64() {
        std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof v);
        return v;
    }
    std::string str() {
        std::uint64_t n = u64();
        if (n > size_ - pos_)
            throw SnapshotError(SnapshotErrorCode::Truncated,
                                "snapshot: string length exceeds remaining payload");
        std::string s(data_ + pos_, n);
        pos_ += n;
        return s;
    }
    /// Guard for count fields ahead of element loops: a corrupt count must
    /// fail fast instead of driving a multi-gigabyte allocation. Each
    /// element of the upcoming sequence occupies at least `min_elem_bytes`.
    std::uint64_t count(std::size_t min_elem_bytes, const char* what) {
        std::uint64_t n = u64();
        if (min_elem_bytes > 0 && n > (size_ - pos_) / min_elem_bytes)
            throw SnapshotError(SnapshotErrorCode::Corrupt,
                                std::string("snapshot: implausible ") + what + " count");
        return n;
    }
    [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }

private:
    void need(std::size_t n) {
        if (n > size_ - pos_)
            throw SnapshotError(SnapshotErrorCode::Truncated,
                                "snapshot: payload ends mid-structure");
    }
    const char* data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// SimConfig codec: the full stored knob set, fixed order. The config rides
// in the payload so a snapshot is replayable standalone (gdda-serve --resume
// reconstructs the job's physics from the manifest, then restore_engine
// cross-checks it against this stored copy via the header fingerprint).

void write_config(ByteWriter& w, const core::SimConfig& c) {
    w.f64(c.dt);
    w.f64(c.dt_min);
    w.f64(c.dt_max);
    w.f64(c.velocity_carry);
    w.f64(c.max_disp_ratio);
    w.f64(c.search_factor);
    w.u8(static_cast<std::uint8_t>(c.broad_phase));
    w.f64(c.broad_phase_cell);
    w.u8(c.broad_phase_cache ? 1 : 0);
    w.f64(c.pair_cache_margin);
    w.u8(c.classify_pairs ? 1 : 0);
    w.f64(c.penalty_scale);
    w.f64(c.shear_penalty_ratio);
    w.f64(c.fixed_penalty_ratio);
    w.i32(c.max_open_close_iters);
    w.i32(c.max_step_retries);
    w.f64(c.dt_shrink);
    w.f64(c.dt_grow);
    w.u8(c.exact_rotation ? 1 : 0);
    w.u8(static_cast<std::uint8_t>(c.precond));
    w.u8(static_cast<std::uint8_t>(c.spmv_backend));
    // The step-wide team, resolved through the deprecated solver_threads
    // alias: one i32 slot keeps the format stable, and the reader restores
    // it into solver_threads, which effective_step_threads() falls back to.
    w.i32(c.effective_step_threads());
    w.u8(c.reuse_structure ? 1 : 0);
    w.u8(c.warm_start_across_passes ? 1 : 0);
    w.i32(c.checkpoint_interval);
    w.i32(c.pcg.max_iters);
    w.f64(c.pcg.rel_tol);
    w.f64(c.pcg.abs_tol);
    w.u8(c.pcg.fused ? 1 : 0);
    w.u8(static_cast<std::uint8_t>(c.pcg.precision));
    w.i32(c.pcg.max_refine_iters);
    w.i32(c.pcg.inner_max_iters);
    w.f64(c.pcg.inner_rel_tol);
    w.f64(c.pcg.refine_min_progress);
}

core::SimConfig read_config(ByteReader& r) {
    core::SimConfig c;
    c.dt = r.f64();
    c.dt_min = r.f64();
    c.dt_max = r.f64();
    c.velocity_carry = r.f64();
    c.max_disp_ratio = r.f64();
    c.search_factor = r.f64();
    c.broad_phase = static_cast<core::BroadPhase>(r.u8());
    c.broad_phase_cell = r.f64();
    c.broad_phase_cache = r.u8() != 0;
    c.pair_cache_margin = r.f64();
    c.classify_pairs = r.u8() != 0;
    c.penalty_scale = r.f64();
    c.shear_penalty_ratio = r.f64();
    c.fixed_penalty_ratio = r.f64();
    c.max_open_close_iters = r.i32();
    c.max_step_retries = r.i32();
    c.dt_shrink = r.f64();
    c.dt_grow = r.f64();
    c.exact_rotation = r.u8() != 0;
    c.precond = static_cast<core::PrecondKind>(r.u8());
    c.spmv_backend = static_cast<core::SpmvBackend>(r.u8());
    c.solver_threads = r.i32();
    c.reuse_structure = r.u8() != 0;
    c.warm_start_across_passes = r.u8() != 0;
    c.checkpoint_interval = r.i32();
    c.pcg.max_iters = r.i32();
    c.pcg.rel_tol = r.f64();
    c.pcg.abs_tol = r.f64();
    c.pcg.fused = r.u8() != 0;
    c.pcg.precision = static_cast<solver::PcgPrecision>(r.u8());
    c.pcg.max_refine_iters = r.i32();
    c.pcg.inner_max_iters = r.i32();
    c.pcg.inner_rel_tol = r.f64();
    c.pcg.refine_min_progress = r.f64();
    return c;
}

// ---------------------------------------------------------------------------
// BlockSystem / contact / checkpoint codec.

void write_system(ByteWriter& w, const block::BlockSystem& sys) {
    w.u64(sys.blocks.size());
    for (const block::Block& b : sys.blocks) {
        w.u64(b.verts.size());
        for (geom::Vec2 v : b.verts) {
            w.f64(v.x);
            w.f64(v.y);
        }
        w.i32(b.material);
        w.u8(b.fixed ? 1 : 0);
        for (int k = 0; k < 6; ++k) w.f64(b.velocity[k]);
        for (double s : b.stress) w.f64(s);
    }
    w.u64(sys.materials.size());
    for (const block::Material& m : sys.materials) {
        w.f64(m.density);
        w.f64(m.young);
        w.f64(m.poisson);
        w.u8(m.plane_strain ? 1 : 0);
    }
    w.u64(sys.joints.size());
    for (const block::JointMaterial& j : sys.joints) {
        w.f64(j.friction_deg);
        w.f64(j.cohesion);
        w.f64(j.tension);
    }
    w.u64(sys.fixed_points.size());
    for (const block::FixedPoint& fp : sys.fixed_points) {
        w.i32(fp.block);
        w.f64(fp.point.x);
        w.f64(fp.point.y);
        w.f64(fp.anchor.x);
        w.f64(fp.anchor.y);
    }
    w.u64(sys.point_loads.size());
    for (const block::PointLoad& pl : sys.point_loads) {
        w.i32(pl.block);
        w.f64(pl.point.x);
        w.f64(pl.point.y);
        w.f64(pl.force.x);
        w.f64(pl.force.y);
    }
    w.f64(sys.gravity.x);
    w.f64(sys.gravity.y);
    w.u64(sys.joint_of_material.size());
    for (int j : sys.joint_of_material) w.i32(j);
}

block::BlockSystem read_system(ByteReader& r) {
    block::BlockSystem sys;
    std::uint64_t nb = r.count(8 + 4 + 1 + 6 * 8 + 3 * 8, "block");
    sys.blocks.resize(nb);
    for (block::Block& b : sys.blocks) {
        std::uint64_t nv = r.count(16, "vertex");
        b.verts.resize(nv);
        for (geom::Vec2& v : b.verts) {
            v.x = r.f64();
            v.y = r.f64();
        }
        b.material = r.i32();
        b.fixed = r.u8() != 0;
        for (int k = 0; k < 6; ++k) b.velocity[k] = r.f64();
        for (double& s : b.stress) s = r.f64();
    }
    std::uint64_t nm = r.count(3 * 8 + 1, "material");
    sys.materials.resize(nm);
    for (block::Material& m : sys.materials) {
        m.density = r.f64();
        m.young = r.f64();
        m.poisson = r.f64();
        m.plane_strain = r.u8() != 0;
    }
    std::uint64_t nj = r.count(3 * 8, "joint");
    sys.joints.resize(nj);
    for (block::JointMaterial& j : sys.joints) {
        j.friction_deg = r.f64();
        j.cohesion = r.f64();
        j.tension = r.f64();
    }
    std::uint64_t nf = r.count(4 + 4 * 8, "fixed point");
    sys.fixed_points.resize(nf);
    for (block::FixedPoint& fp : sys.fixed_points) {
        fp.block = r.i32();
        fp.point.x = r.f64();
        fp.point.y = r.f64();
        fp.anchor.x = r.f64();
        fp.anchor.y = r.f64();
    }
    std::uint64_t nl = r.count(4 + 4 * 8, "point load");
    sys.point_loads.resize(nl);
    for (block::PointLoad& pl : sys.point_loads) {
        pl.block = r.i32();
        pl.point.x = r.f64();
        pl.point.y = r.f64();
        pl.force.x = r.f64();
        pl.force.y = r.f64();
    }
    sys.gravity.x = r.f64();
    sys.gravity.y = r.f64();
    std::uint64_t njm = r.count(4, "joint map");
    sys.joint_of_material.resize(njm);
    for (int& j : sys.joint_of_material) j = r.i32();
    return sys;
}

void write_contacts(ByteWriter& w, const std::vector<contact::Contact>& contacts) {
    w.u64(contacts.size());
    for (const contact::Contact& c : contacts) {
        w.u8(static_cast<std::uint8_t>(c.kind));
        w.i32(c.bi);
        w.i32(c.vi);
        w.i32(c.bj);
        w.i32(c.e1);
        w.i32(c.e2);
        w.u8(static_cast<std::uint8_t>(c.state));
        w.u8(static_cast<std::uint8_t>(c.prev_state));
        w.f64(c.shear_disp);
        w.f64(c.slide_sign);
        w.f64(c.last_gap);
        w.f64(c.edge_ratio);
        w.i32(c.p1);
        w.i32(c.p2);
    }
}

std::vector<contact::Contact> read_contacts(ByteReader& r) {
    std::uint64_t n = r.count(1 + 5 * 4 + 2 + 4 * 8 + 2 * 4, "contact");
    std::vector<contact::Contact> contacts(n);
    for (contact::Contact& c : contacts) {
        std::uint8_t kind = r.u8();
        if (kind > 2)
            throw SnapshotError(SnapshotErrorCode::Corrupt, "snapshot: invalid contact kind");
        c.kind = static_cast<contact::ContactKind>(kind);
        c.bi = r.i32();
        c.vi = r.i32();
        c.bj = r.i32();
        c.e1 = r.i32();
        c.e2 = r.i32();
        std::uint8_t st = r.u8();
        std::uint8_t pst = r.u8();
        if (st > 2 || pst > 2)
            throw SnapshotError(SnapshotErrorCode::Corrupt, "snapshot: invalid contact state");
        c.state = static_cast<contact::ContactState>(st);
        c.prev_state = static_cast<contact::ContactState>(pst);
        c.shear_disp = r.f64();
        c.slide_sign = r.f64();
        c.last_gap = r.f64();
        c.edge_ratio = r.f64();
        c.p1 = static_cast<std::int8_t>(r.i32());
        c.p2 = static_cast<std::int8_t>(r.i32());
    }
    return contacts;
}

std::string encode_payload(const EngineSnapshot& snap) {
    ByteWriter w;
    w.str(snap.header.git_sha);
    w.u8(snap.header.mode == core::EngineMode::Gpu ? 1 : 0);
    w.i64(snap.state.step_index);
    w.f64(snap.state.time);
    w.f64(snap.state.dt);
    w.f64(snap.state.w0);
    w.f64(snap.state.mobile_size);
    w.f64(snap.state.last_max_velocity);
    w.u64(snap.state.values_epoch);
    write_config(w, snap.config);
    write_system(w, snap.state.sys);
    write_contacts(w, snap.state.contacts);
    w.u64(snap.state.warm_start.size());
    for (const sparse::Vec6& v : snap.state.warm_start)
        for (int k = 0; k < 6; ++k) w.f64(v[k]);
    return w.bytes();
}

EngineSnapshot decode_payload(const char* data, std::size_t size) {
    ByteReader r(data, size);
    EngineSnapshot snap;
    snap.header.git_sha = r.str();
    snap.header.mode = r.u8() != 0 ? core::EngineMode::Gpu : core::EngineMode::Serial;
    snap.state.step_index = static_cast<int>(r.i64());
    snap.header.step_index = snap.state.step_index;
    snap.state.time = r.f64();
    snap.state.dt = r.f64();
    snap.state.w0 = r.f64();
    snap.state.mobile_size = r.f64();
    snap.state.last_max_velocity = r.f64();
    snap.state.values_epoch = r.u64();
    snap.config = read_config(r);
    snap.state.sys = read_system(r);
    snap.state.contacts = read_contacts(r);
    std::uint64_t nw = r.count(6 * 8, "warm start");
    snap.state.warm_start.resize(nw);
    for (sparse::Vec6& v : snap.state.warm_start)
        for (int k = 0; k < 6; ++k) v[k] = r.f64();
    if (r.remaining() != 0)
        throw SnapshotError(SnapshotErrorCode::Corrupt,
                            "snapshot: trailing bytes after payload");
    snap.header.time = snap.state.time;
    snap.header.dt = snap.state.dt;
    snap.header.block_count = snap.state.sys.blocks.size();
    snap.header.contact_count = snap.state.contacts.size();
    return snap;
}

metrics::Counter& state_counter(const char* name, const char* help) {
    return metrics::Registry::global().counter(name, help);
}

} // namespace

const char* to_string(SnapshotErrorCode code) {
    switch (code) {
        case SnapshotErrorCode::OpenFailed: return "open_failed";
        case SnapshotErrorCode::BadMagic: return "bad_magic";
        case SnapshotErrorCode::UnsupportedVersion: return "unsupported_version";
        case SnapshotErrorCode::Truncated: return "truncated";
        case SnapshotErrorCode::Corrupt: return "corrupt";
        case SnapshotErrorCode::Mismatch: return "mismatch";
    }
    return "unknown";
}

std::uint64_t config_fingerprint(const core::SimConfig& c) {
    // Canonical buffer over the trajectory-affecting knobs only. Knobs with
    // proven bitwise-identity contracts (broad phase, classification,
    // caches, threads, fused PCG) and observer-only knobs are excluded so a
    // resume may freely retune them without voiding the contract.
    ByteWriter w;
    w.f64(c.dt);
    w.f64(c.dt_min);
    w.f64(c.dt_max);
    w.f64(c.velocity_carry);
    w.f64(c.max_disp_ratio);
    w.f64(c.search_factor);
    w.f64(c.penalty_scale);
    w.f64(c.shear_penalty_ratio);
    w.f64(c.fixed_penalty_ratio);
    w.i32(c.max_open_close_iters);
    w.i32(c.max_step_retries);
    w.f64(c.dt_shrink);
    w.f64(c.dt_grow);
    w.u8(c.exact_rotation ? 1 : 0);
    w.u8(static_cast<std::uint8_t>(c.precond));
    w.u8(static_cast<std::uint8_t>(c.spmv_backend));
    w.u8(c.warm_start_across_passes ? 1 : 0);
    w.i32(c.pcg.max_iters);
    w.f64(c.pcg.rel_tol);
    w.f64(c.pcg.abs_tol);
    w.u8(static_cast<std::uint8_t>(c.pcg.precision));
    w.i32(c.pcg.max_refine_iters);
    w.i32(c.pcg.inner_max_iters);
    w.f64(c.pcg.inner_rel_tol);
    w.f64(c.pcg.refine_min_progress);
    std::uint64_t h = kFnvOffset;
    fnv1a(h, w.bytes().data(), w.bytes().size());
    return h;
}

EngineSnapshot capture(const core::DdaEngine& engine) {
    EngineSnapshot snap;
    snap.config = engine.config();
    snap.state = engine.capture();
    snap.header.version = kSnapshotVersion;
    snap.header.git_sha = GDDA_GIT_SHA;
    snap.header.mode = engine.mode();
    snap.header.step_index = snap.state.step_index;
    snap.header.time = snap.state.time;
    snap.header.dt = snap.state.dt;
    snap.header.block_count = snap.state.sys.blocks.size();
    snap.header.contact_count = snap.state.contacts.size();
    snap.header.state_fingerprint = block::state_fingerprint(snap.state.sys);
    snap.header.config_fingerprint = config_fingerprint(snap.config);
    return snap;
}

// File layout: magic(8) | version(u32) | header-extract | payload-size(u64)
// | payload | fnv1a(payload)(u64). The header extract repeats the cheap
// triage fields (mode, step, time, dt, counts, fingerprints) ahead of the
// payload so peek_header never touches the bulk data.
void save_snapshot(std::ostream& out, const EngineSnapshot& snap) {
    const std::string payload = encode_payload(snap);
    std::uint64_t checksum = kFnvOffset;
    fnv1a(checksum, payload.data(), payload.size());

    ByteWriter head;
    head.u32(kSnapshotVersion);
    head.str(snap.header.git_sha);
    head.u8(snap.header.mode == core::EngineMode::Gpu ? 1 : 0);
    head.i64(snap.header.step_index);
    head.f64(snap.header.time);
    head.f64(snap.header.dt);
    head.u64(snap.header.block_count);
    head.u64(snap.header.contact_count);
    head.u64(snap.header.state_fingerprint);
    head.u64(snap.header.config_fingerprint);
    head.u64(payload.size());

    out.write(kSnapshotMagic, 8);
    out.write(head.bytes().data(), static_cast<std::streamsize>(head.bytes().size()));
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    ByteWriter tail;
    tail.u64(checksum);
    out.write(tail.bytes().data(), static_cast<std::streamsize>(tail.bytes().size()));
    if (!out)
        throw SnapshotError(SnapshotErrorCode::OpenFailed, "snapshot: stream write failed");
}

void save_snapshot_file(const std::string& path, const EngineSnapshot& snap) {
    const std::string tmp = path + ".tmp";
    std::uint64_t bytes = 0;
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            throw SnapshotError(SnapshotErrorCode::OpenFailed,
                                "snapshot: cannot open for writing: " + tmp);
        save_snapshot(out, snap);
        out.flush();
        if (!out)
            throw SnapshotError(SnapshotErrorCode::OpenFailed,
                                "snapshot: write failed: " + tmp);
        bytes = static_cast<std::uint64_t>(out.tellp());
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw SnapshotError(SnapshotErrorCode::OpenFailed,
                            "snapshot: atomic rename failed: " + path);
    }
    state_counter("gdda_state_checkpoints_written_total",
                  "Snapshot files written by gdda::state")
        .inc();
    state_counter("gdda_state_checkpoint_bytes_total",
                  "Total bytes of snapshot files written")
        .inc(bytes);
}

void save_engine_file(const std::string& path, const core::DdaEngine& engine) {
    save_snapshot_file(path, capture(engine));
}

namespace {

struct RawHeader {
    SnapshotHeader header;
    std::uint64_t payload_size = 0;
};

RawHeader read_raw_header(std::istream& in) {
    char magic[8];
    in.read(magic, 8);
    if (in.gcount() != 8)
        throw SnapshotError(SnapshotErrorCode::Truncated, "snapshot: file shorter than magic");
    if (std::memcmp(magic, kSnapshotMagic, 8) != 0)
        throw SnapshotError(SnapshotErrorCode::BadMagic, "snapshot: not a gdda snapshot file");

    // Fixed-size prefix of the header extract (version + git-sha length).
    auto read_exact = [&](char* dst, std::size_t n) {
        in.read(dst, static_cast<std::streamsize>(n));
        if (static_cast<std::size_t>(in.gcount()) != n)
            throw SnapshotError(SnapshotErrorCode::Truncated,
                                "snapshot: file ends inside header");
    };
    char buf[12];
    read_exact(buf, 12); // u32 version + u64 sha length
    ByteReader pr(buf, 12);
    RawHeader raw;
    raw.header.version = pr.u32();
    if (raw.header.version == 0 || raw.header.version > kSnapshotVersion)
        throw SnapshotError(SnapshotErrorCode::UnsupportedVersion,
                            "snapshot: schema version " + std::to_string(raw.header.version) +
                                " not supported (reader max " +
                                std::to_string(kSnapshotVersion) + ")");
    std::uint64_t sha_len = pr.u64();
    if (sha_len > 4096)
        throw SnapshotError(SnapshotErrorCode::Corrupt, "snapshot: implausible git sha length");
    std::string sha(sha_len, '\0');
    if (sha_len > 0) read_exact(sha.data(), sha_len);
    raw.header.git_sha = std::move(sha);

    char rest[1 + 8 + 8 + 8 + 8 + 8 + 8 + 8 + 8];
    read_exact(rest, sizeof rest);
    ByteReader hr(rest, sizeof rest);
    raw.header.mode = hr.u8() != 0 ? core::EngineMode::Gpu : core::EngineMode::Serial;
    raw.header.step_index = static_cast<int>(hr.i64());
    raw.header.time = hr.f64();
    raw.header.dt = hr.f64();
    raw.header.block_count = hr.u64();
    raw.header.contact_count = hr.u64();
    raw.header.state_fingerprint = hr.u64();
    raw.header.config_fingerprint = hr.u64();
    raw.payload_size = hr.u64();
    return raw;
}

} // namespace

EngineSnapshot load_snapshot(std::istream& in) {
    RawHeader raw = read_raw_header(in);
    if (raw.payload_size > (1ull << 34))
        throw SnapshotError(SnapshotErrorCode::Corrupt, "snapshot: implausible payload size");
    std::string payload(raw.payload_size, '\0');
    in.read(payload.data(), static_cast<std::streamsize>(payload.size()));
    if (static_cast<std::uint64_t>(in.gcount()) != raw.payload_size)
        throw SnapshotError(SnapshotErrorCode::Truncated, "snapshot: file ends inside payload");
    char tail[8];
    in.read(tail, 8);
    if (in.gcount() != 8)
        throw SnapshotError(SnapshotErrorCode::Truncated, "snapshot: missing checksum");
    ByteReader tr(tail, 8);
    std::uint64_t stored = tr.u64();
    std::uint64_t actual = kFnvOffset;
    fnv1a(actual, payload.data(), payload.size());
    if (stored != actual)
        throw SnapshotError(SnapshotErrorCode::Corrupt, "snapshot: payload checksum mismatch");

    EngineSnapshot snap = decode_payload(payload.data(), payload.size());
    snap.header.version = raw.header.version;

    // The header repeats the triage fields; they must agree with the decoded
    // payload or somebody edited one copy.
    if (snap.header.block_count != raw.header.block_count ||
        snap.header.contact_count != raw.header.contact_count ||
        snap.header.step_index != raw.header.step_index)
        throw SnapshotError(SnapshotErrorCode::Corrupt,
                            "snapshot: header disagrees with payload");

    // The decisive bit-faithfulness check: the fingerprint of the decoded
    // system must equal the one recorded at capture time.
    snap.header.state_fingerprint = block::state_fingerprint(snap.state.sys);
    if (snap.header.state_fingerprint != raw.header.state_fingerprint)
        throw SnapshotError(SnapshotErrorCode::Corrupt,
                            "snapshot: state fingerprint mismatch after decode");
    snap.header.config_fingerprint = config_fingerprint(snap.config);
    if (snap.header.config_fingerprint != raw.header.config_fingerprint)
        throw SnapshotError(SnapshotErrorCode::Corrupt,
                            "snapshot: config fingerprint mismatch after decode");
    state_counter("gdda_state_restores_total", "Snapshots successfully loaded").inc();
    return snap;
}

EngineSnapshot load_snapshot_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw SnapshotError(SnapshotErrorCode::OpenFailed,
                            "snapshot: cannot open for reading: " + path);
    return load_snapshot(in);
}

SnapshotHeader peek_header(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw SnapshotError(SnapshotErrorCode::OpenFailed,
                            "snapshot: cannot open for reading: " + path);
    return read_raw_header(in).header;
}

void restore_engine(core::DdaEngine& engine, const EngineSnapshot& snap,
                    bool allow_config_mismatch) {
    if (snap.header.mode != engine.mode())
        throw SnapshotError(SnapshotErrorCode::Mismatch,
                            "snapshot: engine mode differs from snapshot");
    if (snap.state.sys.blocks.size() != engine.system().size())
        throw SnapshotError(SnapshotErrorCode::Mismatch,
                            "snapshot: block count differs from target system");
    if (!allow_config_mismatch &&
        config_fingerprint(engine.config()) != snap.header.config_fingerprint)
        throw SnapshotError(
            SnapshotErrorCode::Mismatch,
            "snapshot: trajectory-affecting config differs from snapshot "
            "(pass allow_config_mismatch to resume with new physics knobs)");
    engine.restore(snap.state);
}

} // namespace gdda::state

#pragma once
// Fleet-level aggregation of a batch of JobResults: terminal-state counts,
// throughput (jobs/s, steps/s), step-latency distribution (p50/p95), worker
// occupancy, and a device-utilization estimate derived from the SIMT cost
// model (modeled device-milliseconds accumulated by all jobs per wall
// millisecond of the batch). Also merges every job's module timers/ledgers
// into one fleet view (explicit merge — accumulation during the run stays
// strictly per-engine) and can export all collected per-worker trace events
// as one Chrome trace with one lane (tid) per worker.

#include <string>
#include <vector>

#include "obs/json.hpp"
#include "sched/job.hpp"
#include "simt/device_profile.hpp"

namespace gdda::sched {

struct BatchReport {
    std::vector<JobResult> jobs;
    int workers = 0;
    double wall_ms = 0.0; ///< batch makespan (first submit -> last finish)

    // Terminal-state census.
    int done = 0;
    int failed = 0;
    int cancelled = 0;
    int deadline_exceeded = 0;

    // Throughput / latency.
    /// UNIQUE completed steps across the batch: each job contributes its
    /// final progress once, never the steps a failed attempt recomputed.
    /// steps_per_s is derived from this, so retries can only lower the
    /// reported throughput, not inflate it.
    long long steps_total = 0;
    /// Engine steps actually executed, including recomputation by retries
    /// (>= steps_total; equal when no retry ever recomputed).
    long long steps_computed = 0;
    /// Executed-but-not-unique steps: the recompute waste retries paid.
    /// Checkpointed jobs resume instead of recomputing, driving this to ~0.
    long long steps_recomputed = 0;
    /// Silent solver failures surfaced: total PCG solves across the batch
    /// that ended without converging (summed over every job's steps).
    long long pcg_failed_solves = 0;
    /// Jobs with at least one non-converged solve.
    int jobs_with_failed_solves = 0;
    double jobs_per_s = 0.0;  ///< finished-ok jobs per wall second
    double steps_per_s = 0.0; ///< completed steps per wall second (all jobs)
    double p50_step_ms = 0.0;
    double p95_step_ms = 0.0;
    double max_step_ms = 0.0;

    // Occupancy estimates.
    double busy_ms = 0.0;             ///< sum of per-job run wall time
    double worker_utilization = 0.0;  ///< busy_ms / (workers * wall_ms)
    /// SIMT-modeled device milliseconds accumulated by the whole batch
    /// (merged ledgers of every job, modeled on `device`).
    double modeled_device_ms = 0.0;
    /// Modeled device-ms per batch wall-ms: the cost-model's estimate of how
    /// busy ONE device would be serving this batch. > 1 means the batch
    /// over-subscribes a single device and would need sharding to keep up.
    double device_utilization = 0.0;

    core::ModuleTimers timers;   ///< merged over all jobs
    core::ModuleLedgers ledgers; ///< merged over all jobs

    [[nodiscard]] bool all_done() const { return done == static_cast<int>(jobs.size()); }

    /// Aggregate a finished batch. `wall_ms` is the caller-measured makespan.
    [[nodiscard]] static BatchReport from(std::vector<JobResult> jobs, int workers,
                                          double wall_ms,
                                          const simt::DeviceProfile& dev);

    /// Fixed-width human-readable summary (per-job table + fleet stats).
    [[nodiscard]] std::string summary() const;
    /// Machine-readable document (schema "gdda.sched.batch" v3; v2 added
    /// pcg_failed_solves fleet-wide and per job, plus per-job
    /// postmortem_path when a flight-recorder bundle was written; v3 adds
    /// the unique-vs-computed step accounting — steps_computed and
    /// steps_recomputed fleet-wide, steps_computed / steps_recomputed /
    /// resumed_from_step per job).
    [[nodiscard]] obs::JsonValue to_json() const;
};

inline constexpr std::string_view kBatchSchemaName = "gdda.sched.batch";
inline constexpr int kBatchSchemaVersion = 3;

/// Write every job's collected trace events (SchedulerConfig::collect_traces)
/// as one Chrome trace file: one pid, one tid lane per worker, span ids
/// remapped to stay unique across jobs. Returns false and fills `err` when
/// nothing was collected or the file cannot be written.
bool write_batch_trace(const std::string& path, const BatchReport& report,
                       const std::string& device = "k40", std::string* err = nullptr);

} // namespace gdda::sched

#include "sched/job_queue.hpp"

#include <algorithm>

namespace gdda::sched {

bool JobTicket::finished() const {
    switch (state()) {
        case JobState::Queued:
        case JobState::Running: return false;
        default: return true;
    }
}

const JobResult& JobTicket::wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return done_; });
    return result_;
}

void JobTicket::finish(JobResult result) {
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (done_) return; // first terminal result wins
        result_ = std::move(result);
        done_ = true;
        state_.store(result_.state, std::memory_order_release);
    }
    cv_.notify_all();
}

JobQueue::JobQueue(std::size_t capacity) : capacity_(std::max<std::size_t>(capacity, 1)) {}

bool JobQueue::push(std::shared_ptr<JobTicket> ticket) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(ticket));
    lock.unlock();
    not_empty_.notify_one();
    return true;
}

bool JobQueue::try_push(std::shared_ptr<JobTicket> ticket) {
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (closed_ || items_.size() >= capacity_) return false;
        items_.push_back(std::move(ticket));
    }
    not_empty_.notify_one();
    return true;
}

std::shared_ptr<JobTicket> JobQueue::pop() {
    for (;;) {
        std::shared_ptr<JobTicket> ticket;
        {
            std::unique_lock<std::mutex> lock(mu_);
            not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
            if (items_.empty()) return nullptr; // closed and drained
            ticket = std::move(items_.front());
            items_.pop_front();
        }
        not_full_.notify_one();
        if (ticket->cancel_requested()) {
            // Cancelled while queued: terminal here, the job never starts.
            JobResult r;
            r.name = ticket->job().name;
            r.state = JobState::Cancelled;
            r.steps_requested = ticket->job().steps;
            ticket->finish(std::move(r));
            continue;
        }
        return ticket;
    }
}

void JobQueue::close() {
    {
        std::lock_guard<std::mutex> lock(mu_);
        closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
}

std::size_t JobQueue::size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
}

bool JobQueue::closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
}

} // namespace gdda::sched

#include "sched/session.hpp"

#include <cctype>
#include <stdexcept>

#include "metrics/registry.hpp"
#include "obs/recorder.hpp"
#include "obs/sink.hpp"

namespace gdda::sched {

namespace {

std::string sanitize(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s)
        out.push_back((std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '_')
                          ? c
                          : '_');
    return out.empty() ? std::string("job") : out;
}

/// In-situ analysis sink: forwards every step record of one engine into the
/// session-wide aggregator. Thread-safe (many engines, one aggregator) and
/// observer-only — it reads the record the engine already produced.
class LiveStatsSink final : public obs::Sink {
public:
    LiveStatsSink(obs::Aggregator& agg, std::mutex& mu) : agg_(agg), mu_(mu) {}
    void on_step(const obs::StepRecord& rec) override {
        std::lock_guard<std::mutex> lock(mu_);
        agg_.on_step(rec);
    }

private:
    obs::Aggregator& agg_;
    std::mutex& mu_;
};

} // namespace

std::string_view admission_reject_name(AdmissionReject r) {
    switch (r) {
        case AdmissionReject::Closed: return "closed";
        case AdmissionReject::TenantQuota: return "tenant_quota";
        case AdmissionReject::SessionQuota: return "session_quota";
    }
    return "unknown";
}

void SessionConfig::validate() const {
    sched.validate();
    if (checkpoint_interval < 0)
        throw std::invalid_argument("SessionConfig: checkpoint_interval must be >= 0");
    if (max_pending_per_tenant < 1 || max_pending_total < 1)
        throw std::invalid_argument("SessionConfig: admission quotas must be >= 1");
    if (max_pending_per_tenant > max_pending_total)
        throw std::invalid_argument(
            "SessionConfig: max_pending_per_tenant must be <= max_pending_total");
}

const JobResult& SessionHandle::result() {
    std::unique_lock<std::mutex> lock(ticket_->mu);
    ticket_->cv.wait(lock, [&] { return ticket_->dispatched; });
    JobHandle h = ticket_->handle;
    lock.unlock();
    return h.result();
}

void SessionHandle::cancel() {
    std::unique_lock<std::mutex> lock(ticket_->mu);
    ticket_->cv.wait(lock, [&] { return ticket_->dispatched; });
    ticket_->handle.cancel();
}

Session::Session(SessionConfig cfg, core::EngineFactory factory)
    : cfg_(std::move(cfg)), sched_(cfg_.sched, std::move(factory)) {
    cfg_.validate();
    dispatcher_ = std::thread([this] { dispatcher_main(); });
}

Session::~Session() {
    try {
        close();
    } catch (...) {
        // Destructor must not throw; close() errors surface only when the
        // caller closes explicitly.
    }
}

void Session::apply_policies(Job& job) {
    if (!cfg_.checkpoint_dir.empty() && job.checkpoint_path.empty())
        job.checkpoint_path = cfg_.checkpoint_dir + "/" + sanitize(job.name) + ".ckpt";
    if (cfg_.checkpoint_interval > 0 && job.config.checkpoint_interval == 0)
        job.config.checkpoint_interval = cfg_.checkpoint_interval;
    if (cfg_.resume) job.resume = true;
    if (cfg_.live_stats) {
        // Chain (not replace) any hook the submitter installed.
        auto prev = std::move(job.on_engine);
        obs::Aggregator* agg = &live_;
        std::mutex* mu = &live_mu_;
        job.on_engine = [prev, agg, mu](core::DdaEngine& engine) {
            std::shared_ptr<obs::Recorder> rec = engine.recorder();
            if (!rec) {
                rec = std::make_shared<obs::Recorder>();
                engine.attach_recorder(rec);
            }
            rec->add_sink(std::make_unique<LiveStatsSink>(*agg, *mu));
            if (prev) prev(engine);
        };
    }
}

SessionHandle Session::submit(Job job) {
    metrics::Registry& reg = metrics::Registry::global();
    auto reject = [&](AdmissionReject why) -> SessionRejected {
        reg.counter("gdda_session_rejected_total", "Session admissions rejected, by reason",
                    {{"reason", std::string(admission_reject_name(why))}})
            .inc();
        return SessionRejected(why, "session admission rejected (" +
                                        std::string(admission_reject_name(why)) +
                                        ") for job '" + job.name + "'");
    };

    apply_policies(job);
    auto ticket = std::make_shared<SessionHandle::Ticket>();
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (closed_) throw reject(AdmissionReject::Closed);
        if (pending_count_ >= cfg_.max_pending_total)
            throw reject(AdmissionReject::SessionQuota);
        std::deque<PendingJob>& lane = pending_[job.tenant];
        if (lane.size() >= cfg_.max_pending_per_tenant)
            throw reject(AdmissionReject::TenantQuota);
        lane.push_back(PendingJob{std::move(job), ticket});
        ++pending_count_;
        ++admitted_count_;
    }
    reg.counter("gdda_session_admitted_total", "Jobs admitted into sessions").inc();
    work_cv_.notify_one();
    return SessionHandle(ticket);
}

void Session::dispatcher_main() {
    for (;;) {
        PendingJob next;
        {
            std::unique_lock<std::mutex> lock(mu_);
            work_cv_.wait(lock, [&] { return pending_count_ > 0 || closed_; });
            if (pending_count_ == 0 && closed_) return;

            // Round-robin across tenants: serve the first non-empty tenant
            // strictly after the last-served one (wrapping), so a tenant
            // that bursts N jobs still yields after each single dispatch.
            auto it = pending_.upper_bound(last_tenant_);
            for (std::size_t scanned = 0; scanned <= pending_.size(); ++scanned) {
                if (it == pending_.end()) it = pending_.begin();
                if (!it->second.empty()) break;
                ++it;
            }
            last_tenant_ = it->first;
            next = std::move(it->second.front());
            it->second.pop_front();
            if (it->second.empty()) pending_.erase(it);
            --pending_count_;
        }
        // Blocking submit outside the lock: the worker queue's backpressure
        // throttles the dispatcher, never the submitters (they bound on the
        // admission quotas instead).
        JobHandle handle = sched_.submit(std::move(next.job));
        {
            std::lock_guard<std::mutex> lock(next.ticket->mu);
            next.ticket->dispatched = true;
            next.ticket->handle = std::move(handle);
        }
        next.ticket->cv.notify_all();
    }
}

BatchReport Session::close() {
    {
        std::lock_guard<std::mutex> lock(mu_);
        closed_ = true;
    }
    work_cv_.notify_all();
    if (dispatcher_.joinable()) dispatcher_.join();
    if (!drained_) {
        report_ = sched_.drain();
        drained_ = true;
    }
    return report_;
}

std::size_t Session::pending() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pending_count_;
}

std::size_t Session::admitted() const {
    std::lock_guard<std::mutex> lock(mu_);
    return admitted_count_;
}

obs::Aggregator Session::live_stats() const {
    std::lock_guard<std::mutex> lock(live_mu_);
    return live_;
}

} // namespace gdda::sched

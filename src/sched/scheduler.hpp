#pragma once
// gdda::sched — multi-scene batch scheduler. Runs N independent DDA
// simulations concurrently over K worker threads feeding off one bounded
// JobQueue. Ownership rules (the whole point of the design):
//
//   * each worker holds AT MOST ONE engine, built fresh per job from that
//     job's scene + config via the core::EngineFactory hook — workspace
//     caches, module timers, cost ledgers, telemetry recorders and tracers
//     are all per-engine and therefore per-job, never shared;
//   * the SIMT kernel hook is per-thread (simt/trace_hook.hpp), so each
//     worker's tracer captures exactly its own engine's launches;
//   * cross-job aggregation happens only AFTER jobs finish, through the
//     explicit ModuleTimers/ModuleLedgers merges in BatchReport::from.
//
// Consequently a job scheduled on any worker, in any queue order, alongside
// any other jobs, produces a trajectory bitwise identical to a direct
// engine.step() loop — enforced by tests/test_sched.cpp and by
// bench_sched_throughput (which exits non-zero on any mismatch).

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/engine_factory.hpp"
#include "sched/job_queue.hpp"
#include "sched/report.hpp"
#include "trace/config.hpp"

namespace gdda::metrics {
class Counter;
class Gauge;
}

namespace gdda::sched {

struct SchedulerConfig {
    /// Worker threads. Job-level parallelism is THE scaling axis: one job =
    /// one worker at a time.
    int workers = 1;
    /// JobQueue bound; submit() blocks once this many jobs are waiting
    /// (backpressure towards the manifest reader / service frontend).
    std::size_t queue_capacity = 32;
    /// Attach a per-job tracer to every engine and keep its events in the
    /// JobResult (merged by write_batch_trace). Jobs whose SimConfig already
    /// enables tracing keep their own tracer and are collected as-is.
    bool collect_traces = false;
    /// Template for the per-job tracers collect_traces creates.
    trace::TraceConfig trace;
    /// Per-worker inner step threads — the thread-budget arbiter's knob,
    /// capping each job's step-wide team (contact pipeline + assembly +
    /// solve all inherit it; SimConfig::step_threads requests within it).
    ///   1 (default): throughput mode — one job = one core; K workers on a
    ///     K-core host never oversubscribe it.
    ///   0: negotiate — each worker gets hardware_concurrency / workers
    ///     threads (at least 1), so a one-worker scheduler runs a single
    ///     heavy job wide (latency mode) and a full pool degrades to the
    ///     throughput pinning automatically.
    ///   N > 1: explicit cap per worker (still clamped to the negotiated
    ///     fair share so workers * inner <= hardware_concurrency).
    /// Inner parallelism never changes results: every parallel stage of the
    /// step fixes its emission/summation order independently of team size
    /// (par/deterministic_reduce.hpp and docs/PERFORMANCE.md), so every
    /// value produces bit-identical trajectories.
    int inner_threads = 1;
    /// Device profile for the batch report's modeled-utilization estimate.
    std::string device = "k40";

    void validate() const; ///< throws std::invalid_argument on nonsense
};

class Scheduler {
public:
    /// Starts the worker pool immediately. A default-constructed factory
    /// means core::default_engine_factory().
    explicit Scheduler(SchedulerConfig cfg = {}, core::EngineFactory factory = {});
    /// Cancels whatever is still queued/running, then joins the workers.
    ~Scheduler();
    Scheduler(const Scheduler&) = delete;
    Scheduler& operator=(const Scheduler&) = delete;

    /// Enqueue a job; blocks while the queue is at capacity (backpressure).
    /// Throws std::runtime_error once the scheduler is draining/closed.
    JobHandle submit(Job job);
    /// Non-blocking submit: nullopt when the queue is full or closed.
    std::optional<JobHandle> try_submit(Job job);

    /// Request cancellation of every job submitted so far (queued jobs never
    /// start; running jobs stop within one time step).
    void cancel_all();

    /// Close the queue, wait for the workers to drain every submitted job,
    /// join the pool, and aggregate all results in submission order. The
    /// scheduler is spent afterwards: further submits throw.
    BatchReport drain();

    [[nodiscard]] int workers() const { return cfg_.workers; }
    [[nodiscard]] std::size_t queued() const { return queue_.size(); }
    [[nodiscard]] const SchedulerConfig& config() const { return cfg_; }

    /// Convenience one-shot: run `jobs` over a fresh pool and report.
    static BatchReport run_batch(std::vector<Job> jobs, SchedulerConfig cfg = {},
                                 core::EngineFactory factory = {});

private:
    void worker_main(int lane);
    JobResult run_job(JobTicket& ticket, int lane);

    SchedulerConfig cfg_;
    core::EngineFactory factory_;
    JobQueue queue_;
    // Live scheduler instruments in the global metrics registry (always on;
    // a handful of atomics per job lifecycle, nothing on the step path).
    metrics::Gauge* queue_depth_;
    metrics::Gauge* busy_workers_;
    metrics::Counter* steps_total_;
    std::vector<std::thread> pool_;
    mutable std::mutex tickets_mu_;
    std::vector<std::shared_ptr<JobTicket>> tickets_; ///< submission order
    double batch_start_us_ = -1.0; ///< first submit (trace::now_us clock)
    std::atomic<bool> closed_{false};
    bool drained_ = false;
};

} // namespace gdda::sched

#pragma once
// gdda::sched job model. A Job is one self-contained DDA simulation request:
// a scene factory (fresh BlockSystem per attempt, so retries and re-runs are
// bit-reproducible), a SimConfig, an engine mode, a step budget, an optional
// wall-clock deadline, and a retry-on-failure policy. A JobResult carries the
// terminal state plus everything the batch report aggregates: per-step
// latencies, merged module timers/ledgers, and a bitwise fingerprint of the
// final block state (the determinism contract: the same job run through any
// scheduler configuration hashes identically to a direct engine loop).

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "block/block_system.hpp"
#include "core/config.hpp"
#include "core/engine.hpp"
#include "core/timing.hpp"
#include "trace/tracer.hpp"

namespace gdda::sched {

/// Builds the job's scene. Called once per attempt on the worker thread;
/// must be pure (same blocks every call) for retries and determinism checks
/// to be meaningful, and thread-safe (no shared mutable state).
using SceneFactory = std::function<block::BlockSystem()>;

enum class JobState : int {
    Queued = 0,
    Running,
    Done,
    Failed,           ///< scene factory or engine threw (after all retries)
    Cancelled,        ///< cancel requested; stops within one time step
    DeadlineExceeded, ///< wall-clock budget hit; partial progress reported
};
[[nodiscard]] std::string_view job_state_name(JobState s);

struct Job {
    std::string name;
    SceneFactory scene;
    core::SimConfig config;
    core::EngineMode mode = core::EngineMode::Serial;
    int steps = 10;           ///< step budget (loop-1 iterations to run)
    double deadline_ms = 0.0; ///< wall-clock budget; 0 = none
    int max_retries = 0;      ///< re-run a FAILED job this many extra times
    /// Fault injection: throw after this many completed steps (0 = never).
    /// Exists so tests and the CI post-mortem drill can force a
    /// deterministic Failed job with real step records in the flight
    /// recorder; manifest key `fail_after=<n>`. The fault fires only on
    /// attempts that start from scratch — a checkpoint-resumed attempt (or
    /// a `resume` job) skips it, which is what lets the CI crash-recovery
    /// drill rerun the *same* manifest under `gdda-serve --resume`.
    int fail_after = 0;

    /// Checkpoint file for this job ("" = checkpointing off). When set and
    /// SimConfig::checkpoint_interval > 0, the worker snapshots the engine
    /// every N completed steps plus once at the end (gdda::state binary
    /// format, atomic rename). Retries of a failed attempt resume from this
    /// file instead of recomputing from step 0 (retry-without-recompute);
    /// manifest key `checkpoint=<path>`.
    std::string checkpoint_path;

    /// Resume this job from `checkpoint_path` on its FIRST attempt (crash
    /// recovery: `gdda-serve --resume`). A missing file falls back to a
    /// fresh run; a malformed one is a typed rejection counted in
    /// gdda_state_recovery_rejected_total, also falling back to fresh.
    bool resume = false;

    /// Tenant for session admission control and fair queueing ("" = the
    /// default tenant). Jobs of different tenants are dispatched round-robin
    /// regardless of submission burst order; manifest key `tenant=<name>`.
    std::string tenant;

    /// Session hook: called on the worker thread with the live engine right
    /// after construction (and after a checkpoint restore, if any), before
    /// the first step of every attempt. The in-situ analysis path attaches
    /// observer-only sinks here; the hook must not mutate physics state.
    std::function<void(core::DdaEngine&)> on_engine;
};

struct JobResult {
    std::string name;
    JobState state = JobState::Queued;
    int steps_requested = 0;
    int steps_done = 0;  ///< unique completed steps (partial on cancel/deadline)
    int attempts = 0;    ///< 1 + retries actually consumed
    /// Step index the final attempt started from (> 0 iff it restored a
    /// checkpoint; crash recovery and retry-without-recompute land here).
    int resumed_from_step = 0;
    /// Engine steps actually EXECUTED across all attempts, including any
    /// recomputed after a failed attempt. steps_computed >= steps_done;
    /// the gap is the recompute waste that checkpointing eliminates.
    /// BatchReport throughput uses steps_done (unique), never this.
    int steps_computed = 0;
    /// Of steps_computed, how many re-executed a step index some earlier
    /// attempt of this run had already executed (exact, high-water-mark
    /// accounting: steps preserved via a checkpoint are NOT recomputation).
    int steps_recomputed = 0;
    int worker = -1;     ///< worker lane that ran the job
    std::string error;   ///< what() of the terminal failure, empty otherwise
    double wall_ms = 0.0;         ///< run time of the final attempt
    double queue_ms = 0.0;        ///< submit -> first attempt start
    double sim_time = 0.0;        ///< simulated seconds reached
    double last_max_velocity = 0.0;
    std::vector<double> step_ms;  ///< per-step latency samples (final attempt)
    core::StepStats last;         ///< stats of the last completed step
    /// Non-converged PCG solves summed over the job's completed steps
    /// (silent solver failures surfaced by `gdda-serve --verify`).
    long long pcg_failed_solves = 0;
    /// Post-mortem bundle written for this job ("" when none was dumped).
    std::string postmortem_path;
    core::ModuleTimers timers;    ///< merged per-module wall seconds
    core::ModuleLedgers ledgers;  ///< merged per-module SIMT cost ledgers
    /// FNV-1a over the final block state (0 until >= 1 step completed).
    std::uint64_t state_hash = 0;
    /// Per-job span/kernel events captured by the worker's own tracer when
    /// SchedulerConfig::collect_traces is on (empty otherwise). Merged into
    /// one multi-lane Chrome trace by sched::write_batch_trace.
    std::vector<trace::Event> trace_events;
    std::uint64_t trace_dropped = 0;

    [[nodiscard]] bool terminal_ok() const { return state == JobState::Done; }
};

/// Bitwise fingerprint of a block system's dynamic state: vertex positions,
/// velocities and stresses of every block, hashed over their raw double bits
/// (FNV-1a). Two runs agree on this iff their trajectories are bit-identical,
/// which is exactly the scheduler's determinism contract. The canonical
/// implementation lives at the block layer so observers (gdda::metrics
/// post-mortems) can fingerprint without linking sched; re-exported here to
/// keep the historical sched::state_fingerprint spelling working.
using block::state_fingerprint;

} // namespace gdda::sched

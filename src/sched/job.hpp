#pragma once
// gdda::sched job model. A Job is one self-contained DDA simulation request:
// a scene factory (fresh BlockSystem per attempt, so retries and re-runs are
// bit-reproducible), a SimConfig, an engine mode, a step budget, an optional
// wall-clock deadline, and a retry-on-failure policy. A JobResult carries the
// terminal state plus everything the batch report aggregates: per-step
// latencies, merged module timers/ledgers, and a bitwise fingerprint of the
// final block state (the determinism contract: the same job run through any
// scheduler configuration hashes identically to a direct engine loop).

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "block/block_system.hpp"
#include "core/config.hpp"
#include "core/engine.hpp"
#include "core/timing.hpp"
#include "trace/tracer.hpp"

namespace gdda::sched {

/// Builds the job's scene. Called once per attempt on the worker thread;
/// must be pure (same blocks every call) for retries and determinism checks
/// to be meaningful, and thread-safe (no shared mutable state).
using SceneFactory = std::function<block::BlockSystem()>;

enum class JobState : int {
    Queued = 0,
    Running,
    Done,
    Failed,           ///< scene factory or engine threw (after all retries)
    Cancelled,        ///< cancel requested; stops within one time step
    DeadlineExceeded, ///< wall-clock budget hit; partial progress reported
};
[[nodiscard]] std::string_view job_state_name(JobState s);

struct Job {
    std::string name;
    SceneFactory scene;
    core::SimConfig config;
    core::EngineMode mode = core::EngineMode::Serial;
    int steps = 10;           ///< step budget (loop-1 iterations to run)
    double deadline_ms = 0.0; ///< wall-clock budget; 0 = none
    int max_retries = 0;      ///< re-run a FAILED job this many extra times
    /// Fault injection: throw after this many completed steps (0 = never).
    /// Exists so tests and the CI post-mortem drill can force a
    /// deterministic Failed job with real step records in the flight
    /// recorder; manifest key `fail_after=<n>`.
    int fail_after = 0;
};

struct JobResult {
    std::string name;
    JobState state = JobState::Queued;
    int steps_requested = 0;
    int steps_done = 0;  ///< completed engine steps (partial on cancel/deadline)
    int attempts = 0;    ///< 1 + retries actually consumed
    int worker = -1;     ///< worker lane that ran the job
    std::string error;   ///< what() of the terminal failure, empty otherwise
    double wall_ms = 0.0;         ///< run time of the final attempt
    double queue_ms = 0.0;        ///< submit -> first attempt start
    double sim_time = 0.0;        ///< simulated seconds reached
    double last_max_velocity = 0.0;
    std::vector<double> step_ms;  ///< per-step latency samples (final attempt)
    core::StepStats last;         ///< stats of the last completed step
    /// Non-converged PCG solves summed over the job's completed steps
    /// (silent solver failures surfaced by `gdda-serve --verify`).
    long long pcg_failed_solves = 0;
    /// Post-mortem bundle written for this job ("" when none was dumped).
    std::string postmortem_path;
    core::ModuleTimers timers;    ///< merged per-module wall seconds
    core::ModuleLedgers ledgers;  ///< merged per-module SIMT cost ledgers
    /// FNV-1a over the final block state (0 until >= 1 step completed).
    std::uint64_t state_hash = 0;
    /// Per-job span/kernel events captured by the worker's own tracer when
    /// SchedulerConfig::collect_traces is on (empty otherwise). Merged into
    /// one multi-lane Chrome trace by sched::write_batch_trace.
    std::vector<trace::Event> trace_events;
    std::uint64_t trace_dropped = 0;

    [[nodiscard]] bool terminal_ok() const { return state == JobState::Done; }
};

/// Bitwise fingerprint of a block system's dynamic state: vertex positions,
/// velocities and stresses of every block, hashed over their raw double bits
/// (FNV-1a). Two runs agree on this iff their trajectories are bit-identical,
/// which is exactly the scheduler's determinism contract. The canonical
/// implementation lives at the block layer so observers (gdda::metrics
/// post-mortems) can fingerprint without linking sched; re-exported here to
/// keep the historical sched::state_fingerprint spelling working.
using block::state_fingerprint;

} // namespace gdda::sched

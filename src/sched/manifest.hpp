#pragma once
// Scene manifests: the text format gdda_serve (and tests/benches) use to
// describe a batch of simulation jobs. One job per line:
//
//     <name> <scene-spec> <steps> [key=value ...]     # comment
//
// scene-spec:
//     slope:N      procedural jointed slope with ~N blocks (paper case 1)
//     rocks:N      falling-rocks model with ~N loose blocks (paper case 2)
//     column:N     N stacked unit blocks on a fixed floor
//     tunnel       jointed rock mass with a circular opening
//     incline:A:F  block on an A-degree incline with F-degree friction
//     floor        one block resting on a fixed floor
//     free         free-falling block
//
// keys: mode=serial|gpu, deadline=<ms>, retries=<n>, steps=<n>,
//       threads=<n> (SimConfig::step_threads; 0 = inherit worker budget),
//       metrics=on|off, postmortem=<dir>, fail_after=<n> (fault injection;
//       fires only on from-scratch attempts, never after a checkpoint
//       resume), checkpoint=<file> (gdda::state snapshot path),
//       checkpoint_interval=<n> (snapshot every n steps; see docs/STATE.md),
//       resume=on|off (restore the checkpoint on the first attempt),
//       tenant=<name> (session fair-queueing lane)
//
// Blank lines and #-comments are skipped. Scene factories built here are
// pure and thread-safe: every call rebuilds the scene from its (fixed) seed,
// which is what makes retries and determinism checks meaningful.

#include <iosfwd>
#include <string>
#include <vector>

#include "sched/job.hpp"

namespace gdda::sched {

/// Per-batch defaults a manifest line can override.
struct ManifestDefaults {
    core::SimConfig config;
    core::EngineMode mode = core::EngineMode::Serial;
    int steps = 10;
};

/// Parse one scene spec into a factory. Throws std::invalid_argument on an
/// unknown kind or malformed parameters.
[[nodiscard]] SceneFactory parse_scene_spec(const std::string& spec);

/// Parse a whole manifest stream. Throws std::invalid_argument naming the
/// offending line on any malformed entry.
[[nodiscard]] std::vector<Job> parse_manifest(std::istream& in,
                                              const ManifestDefaults& defaults);

/// Load a manifest file. Throws std::runtime_error when the file cannot be
/// opened, std::invalid_argument on malformed content.
[[nodiscard]] std::vector<Job> load_manifest(const std::string& path,
                                             const ManifestDefaults& defaults);

} // namespace gdda::sched

#include "sched/report.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "trace/chrome_export.hpp"

namespace gdda::sched {

namespace {

/// Nearest-rank percentile of an already-sorted sample vector.
double percentile(const std::vector<double>& sorted, double p) {
    if (sorted.empty()) return 0.0;
    const double rank = p * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

} // namespace

BatchReport BatchReport::from(std::vector<JobResult> jobs, int workers, double wall_ms,
                              const simt::DeviceProfile& dev) {
    BatchReport r;
    r.jobs = std::move(jobs);
    r.workers = workers;
    r.wall_ms = wall_ms;

    std::vector<double> samples;
    for (const JobResult& j : r.jobs) {
        switch (j.state) {
            case JobState::Done: ++r.done; break;
            case JobState::Failed: ++r.failed; break;
            case JobState::Cancelled: ++r.cancelled; break;
            case JobState::DeadlineExceeded: ++r.deadline_exceeded; break;
            default: break;
        }
        r.steps_total += j.steps_done;
        r.steps_computed += j.steps_computed;
        // Exact per-job high-water accounting from the scheduler: a step is
        // recomputed only when some earlier attempt already executed that
        // step index (checkpoint-preserved progress is NOT recomputation).
        r.steps_recomputed += j.steps_recomputed;
        r.pcg_failed_solves += j.pcg_failed_solves;
        if (j.pcg_failed_solves > 0) ++r.jobs_with_failed_solves;
        r.busy_ms += j.wall_ms;
        r.timers.merge(j.timers);
        r.ledgers.merge(j.ledgers);
        samples.insert(samples.end(), j.step_ms.begin(), j.step_ms.end());
    }
    std::sort(samples.begin(), samples.end());
    r.p50_step_ms = percentile(samples, 0.50);
    r.p95_step_ms = percentile(samples, 0.95);
    r.max_step_ms = samples.empty() ? 0.0 : samples.back();

    const double wall_s = wall_ms * 1e-3;
    if (wall_s > 0.0) {
        r.jobs_per_s = static_cast<double>(r.done) / wall_s;
        r.steps_per_s = static_cast<double>(r.steps_total) / wall_s;
    }
    if (workers > 0 && wall_ms > 0.0)
        r.worker_utilization = r.busy_ms / (static_cast<double>(workers) * wall_ms);
    r.modeled_device_ms = r.ledgers.total_modeled_ms(dev);
    if (wall_ms > 0.0) r.device_utilization = r.modeled_device_ms / wall_ms;
    return r;
}

std::string BatchReport::summary() const {
    std::string out;
    char line[256];
    std::snprintf(line, sizeof line, "%-18s %-9s %7s %6s %9s %9s %6s  %s\n", "job", "state",
                  "steps", "try", "wall ms", "queue ms", "lane", "hash");
    out += line;
    for (const JobResult& j : jobs) {
        std::snprintf(line, sizeof line, "%-18.18s %-9.9s %3d/%-3d %6d %9.2f %9.2f %6d  %016llx\n",
                      j.name.c_str(), std::string(job_state_name(j.state)).c_str(),
                      j.steps_done, j.steps_requested, j.attempts, j.wall_ms, j.queue_ms,
                      j.worker, static_cast<unsigned long long>(j.state_hash));
        out += line;
        if (!j.error.empty()) {
            std::snprintf(line, sizeof line, "    error: %.200s\n", j.error.c_str());
            out += line;
        }
        if (j.pcg_failed_solves > 0) {
            std::snprintf(line, sizeof line, "    warning: %lld non-converged PCG solve(s)\n",
                          j.pcg_failed_solves);
            out += line;
        }
        if (!j.postmortem_path.empty()) {
            std::snprintf(line, sizeof line, "    post-mortem: %.200s\n",
                          j.postmortem_path.c_str());
            out += line;
        }
    }
    std::snprintf(line, sizeof line,
                  "%zu jobs: %d done, %d failed, %d cancelled, %d deadline-exceeded | "
                  "%d workers, %.1f ms wall\n",
                  jobs.size(), done, failed, cancelled, deadline_exceeded, workers, wall_ms);
    out += line;
    std::snprintf(line, sizeof line,
                  "throughput: %.2f jobs/s, %.1f unique steps/s | step latency p50 %.3f ms, "
                  "p95 %.3f ms, max %.3f ms\n",
                  jobs_per_s, steps_per_s, p50_step_ms, p95_step_ms, max_step_ms);
    out += line;
    if (steps_recomputed > 0) {
        std::snprintf(line, sizeof line,
                      "retry waste: %lld of %lld executed steps were recomputation "
                      "(%lld unique)\n",
                      steps_recomputed, steps_computed, steps_total);
        out += line;
    }
    if (pcg_failed_solves > 0) {
        std::snprintf(line, sizeof line,
                      "solver health: %lld non-converged solve(s) across %d job(s)\n",
                      pcg_failed_solves, jobs_with_failed_solves);
        out += line;
    }
    std::snprintf(line, sizeof line,
                  "occupancy: workers %.1f%% busy | modeled device load %.3f ms "
                  "(%.2f device-ms per wall-ms)\n",
                  100.0 * worker_utilization, modeled_device_ms, device_utilization);
    out += line;
    return out;
}

obs::JsonValue BatchReport::to_json() const {
    using obs::JsonValue;
    JsonValue doc = JsonValue::object();
    doc.set("schema", JsonValue::string(std::string(kBatchSchemaName)));
    doc.set("version", JsonValue::integer(kBatchSchemaVersion));
    doc.set("workers", JsonValue::integer(workers));
    doc.set("wall_ms", JsonValue::number(wall_ms));
    doc.set("done", JsonValue::integer(done));
    doc.set("failed", JsonValue::integer(failed));
    doc.set("cancelled", JsonValue::integer(cancelled));
    doc.set("deadline_exceeded", JsonValue::integer(deadline_exceeded));
    doc.set("steps_total", JsonValue::integer(steps_total));
    doc.set("steps_computed", JsonValue::integer(steps_computed));
    doc.set("steps_recomputed", JsonValue::integer(steps_recomputed));
    doc.set("pcg_failed_solves", JsonValue::integer(pcg_failed_solves));
    doc.set("jobs_with_failed_solves", JsonValue::integer(jobs_with_failed_solves));
    doc.set("jobs_per_s", JsonValue::number(jobs_per_s));
    doc.set("steps_per_s", JsonValue::number(steps_per_s));
    doc.set("p50_step_ms", JsonValue::number(p50_step_ms));
    doc.set("p95_step_ms", JsonValue::number(p95_step_ms));
    doc.set("max_step_ms", JsonValue::number(max_step_ms));
    doc.set("busy_ms", JsonValue::number(busy_ms));
    doc.set("worker_utilization", JsonValue::number(worker_utilization));
    doc.set("modeled_device_ms", JsonValue::number(modeled_device_ms));
    doc.set("device_utilization", JsonValue::number(device_utilization));

    JsonValue arr = JsonValue::array();
    for (const JobResult& j : jobs) {
        JsonValue row = JsonValue::object();
        row.set("name", JsonValue::string(j.name));
        row.set("state", JsonValue::string(std::string(job_state_name(j.state))));
        row.set("steps_requested", JsonValue::integer(j.steps_requested));
        row.set("steps_done", JsonValue::integer(j.steps_done));
        row.set("steps_computed", JsonValue::integer(j.steps_computed));
        if (j.steps_recomputed > 0)
            row.set("steps_recomputed", JsonValue::integer(j.steps_recomputed));
        if (j.resumed_from_step > 0)
            row.set("resumed_from_step", JsonValue::integer(j.resumed_from_step));
        row.set("attempts", JsonValue::integer(j.attempts));
        row.set("worker", JsonValue::integer(j.worker));
        row.set("wall_ms", JsonValue::number(j.wall_ms));
        row.set("queue_ms", JsonValue::number(j.queue_ms));
        row.set("sim_time", JsonValue::number(j.sim_time));
        char hash[17];
        std::snprintf(hash, sizeof hash, "%016llx",
                      static_cast<unsigned long long>(j.state_hash));
        row.set("state_hash", JsonValue::string(hash));
        row.set("pcg_failed_solves", JsonValue::integer(j.pcg_failed_solves));
        if (!j.postmortem_path.empty())
            row.set("postmortem_path", JsonValue::string(j.postmortem_path));
        if (!j.error.empty()) row.set("error", JsonValue::string(j.error));
        arr.push(std::move(row));
    }
    doc.set("jobs", std::move(arr));
    return doc;
}

bool write_batch_trace(const std::string& path, const BatchReport& report,
                       const std::string& device, std::string* err) {
    // Merge per-job event streams: remap span ids to stay globally unique and
    // give every worker its own lane (tid) so per-lane nesting stays valid.
    std::vector<trace::Event> merged;
    std::uint64_t dropped = 0;
    std::uint32_t id_base = 0;
    std::uint64_t seq = 0;
    for (const JobResult& j : report.jobs) {
        std::uint32_t max_id = 0;
        for (const trace::Event& src : j.trace_events) {
            trace::Event e = src;
            if (e.id) e.id += id_base;
            if (e.parent) e.parent += id_base;
            e.tid = static_cast<std::uint32_t>(j.worker >= 0 ? j.worker + 1 : 1);
            e.seq = seq++;
            max_id = std::max(max_id, std::max(src.id, src.parent));
            merged.push_back(std::move(e));
        }
        id_base += max_id;
        dropped += j.trace_dropped;
    }
    if (merged.empty()) {
        if (err) *err = "no trace events collected (SchedulerConfig::collect_traces off?)";
        return false;
    }
    trace::TraceConfig cfg;
    cfg.enabled = true;
    cfg.device = device;
    cfg.ring_capacity = merged.size();
    const obs::JsonValue doc = trace::chrome_trace_document(merged, cfg, dropped);
    std::ofstream out(path, std::ios::out | std::ios::trunc);
    if (!out) {
        if (err) *err = "cannot open '" + path + "' for writing";
        return false;
    }
    out << doc.dump() << '\n';
    if (!out) {
        if (err) *err = "write to '" + path + "' failed";
        return false;
    }
    return true;
}

} // namespace gdda::sched

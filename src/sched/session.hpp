#pragma once
// gdda::sched sessions: the persistent-service layer over the batch
// Scheduler. A Session stays open and accepts jobs over time (the batch
// scheduler is drain-and-exit), adding the service concerns the ROADMAP
// names:
//
//   * admission control — bounded pending work per tenant and per session,
//     rejected with a typed SessionRejected instead of unbounded queueing;
//   * per-tenant fair queueing — a dispatcher thread feeds the worker pool
//     round-robin across tenants, so one tenant's burst of 100 jobs cannot
//     starve another tenant's single job no matter the submission order;
//   * periodic checkpointing + crash recovery — every admitted job gets a
//     deterministic checkpoint file under checkpoint_dir (gdda::state
//     binary snapshots) and a resume flag when the session is recovering,
//     so interrupted jobs continue from their last checkpoint, not step 0;
//   * in-situ analysis — a live obs::Aggregator fed by every engine while
//     it runs (the plugin-sink idiom), so fleet totals are readable DURING
//     the session instead of post-hoc.
//
// The determinism contract is inherited unchanged: admission order, tenant
// interleaving, and checkpoint cadence never change a trajectory, only who
// runs when (and resume is bitwise-identical by the gdda::state contract).

#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "obs/aggregator.hpp"
#include "sched/scheduler.hpp"

namespace gdda::sched {

enum class AdmissionReject : int {
    Closed = 0,       ///< session already closed
    TenantQuota,      ///< tenant's pending backlog at max_pending_per_tenant
    SessionQuota,     ///< session-wide backlog at max_pending_total
};
[[nodiscard]] std::string_view admission_reject_name(AdmissionReject r);

/// Typed admission failure; counted per cause in
/// gdda_session_rejected_total{reason=...}.
class SessionRejected : public std::runtime_error {
public:
    SessionRejected(AdmissionReject reason, const std::string& what)
        : std::runtime_error(what), reason_(reason) {}
    [[nodiscard]] AdmissionReject reason() const { return reason_; }

private:
    AdmissionReject reason_;
};

struct SessionConfig {
    SchedulerConfig sched;

    /// Directory for per-job checkpoint files ("" = checkpointing off).
    /// Each admitted job without an explicit Job::checkpoint_path gets
    /// `<dir>/<sanitized-name>.ckpt` (deterministic, so a restarted session
    /// finds the same files).
    std::string checkpoint_dir;
    /// Default SimConfig::checkpoint_interval applied to admitted jobs that
    /// did not set one themselves (0 = leave job configs untouched).
    int checkpoint_interval = 0;
    /// Crash recovery: mark every admitted job `resume`, so its first
    /// attempt restores the checkpoint file when one exists (a missing file
    /// is a normal fresh start, a malformed one a counted rejection).
    bool resume = false;

    /// Admission bounds on work waiting in the session (per tenant and
    /// total), NOT counting jobs already handed to the worker pool.
    std::size_t max_pending_per_tenant = 64;
    std::size_t max_pending_total = 256;

    /// Attach the session's live in-situ aggregator to every job's engine.
    bool live_stats = false;

    void validate() const; ///< throws std::invalid_argument on nonsense
};

/// Future-like view of a session-submitted job: resolves to the scheduler's
/// JobHandle once the dispatcher hands the job to the pool.
class SessionHandle {
public:
    SessionHandle() = default;

    [[nodiscard]] bool valid() const { return ticket_ != nullptr; }
    /// Block until the job is terminal; the reference stays valid while the
    /// handle lives.
    const JobResult& result();
    /// Request cancellation (waits for dispatch first, then cancels; a
    /// running job stops within one time step).
    void cancel();

private:
    friend class Session;
    struct Ticket {
        std::mutex mu;
        std::condition_variable cv;
        bool dispatched = false;
        JobHandle handle;
    };
    explicit SessionHandle(std::shared_ptr<Ticket> t) : ticket_(std::move(t)) {}
    std::shared_ptr<Ticket> ticket_;
};

class Session {
public:
    explicit Session(SessionConfig cfg = {}, core::EngineFactory factory = {});
    /// Closes (drains) the session if the caller never did.
    ~Session();
    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;

    /// Admit a job. Applies the session's checkpoint/resume policy, enforces
    /// the admission quotas (throws SessionRejected), and queues the job for
    /// fair dispatch. Returns immediately — the job runs when the
    /// round-robin dispatcher and the worker pool get to it.
    SessionHandle submit(Job job);

    /// Stop admitting, dispatch everything still pending, drain the worker
    /// pool, and aggregate every job this session ever ran. Idempotent
    /// (subsequent calls return the same report).
    BatchReport close();

    /// Jobs admitted but not yet handed to the worker pool.
    [[nodiscard]] std::size_t pending() const;
    /// Jobs admitted over the session's lifetime.
    [[nodiscard]] std::size_t admitted() const;

    /// Copy of the live in-situ aggregator (SessionConfig::live_stats):
    /// fleet step/module/solver totals of every engine step completed so
    /// far, readable while jobs are still running.
    [[nodiscard]] obs::Aggregator live_stats() const;

    [[nodiscard]] const SessionConfig& config() const { return cfg_; }

private:
    void dispatcher_main();
    void apply_policies(Job& job);

    SessionConfig cfg_;
    Scheduler sched_;

    struct PendingJob {
        Job job;
        std::shared_ptr<SessionHandle::Ticket> ticket;
    };
    mutable std::mutex mu_;
    std::condition_variable work_cv_;
    /// Per-tenant FIFO backlogs; round-robin order is the rotation of
    /// tenant keys starting after the last-served tenant.
    std::map<std::string, std::deque<PendingJob>> pending_;
    std::size_t pending_count_ = 0;
    std::size_t admitted_count_ = 0;
    std::string last_tenant_; ///< round-robin cursor
    bool closed_ = false;

    mutable std::mutex live_mu_;
    obs::Aggregator live_;

    std::thread dispatcher_;
    bool drained_ = false;
    BatchReport report_;
};

} // namespace gdda::sched

#include "sched/manifest.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "models/falling_rocks.hpp"
#include "models/slope.hpp"
#include "models/stacks.hpp"
#include "models/tunnel.hpp"

namespace gdda::sched {

namespace {

/// Split "kind:a:b" on ':' into its pieces.
std::vector<std::string> split(const std::string& s, char sep) {
    std::vector<std::string> parts;
    std::string part;
    std::istringstream in(s);
    while (std::getline(in, part, sep)) parts.push_back(part);
    return parts;
}

int parse_int(const std::string& s, const std::string& what) {
    try {
        std::size_t end = 0;
        const int v = std::stoi(s, &end);
        if (end != s.size()) throw std::invalid_argument(s);
        return v;
    } catch (const std::exception&) {
        throw std::invalid_argument("manifest: bad integer '" + s + "' for " + what);
    }
}

double parse_double(const std::string& s, const std::string& what) {
    try {
        std::size_t end = 0;
        const double v = std::stod(s, &end);
        if (end != s.size()) throw std::invalid_argument(s);
        return v;
    } catch (const std::exception&) {
        throw std::invalid_argument("manifest: bad number '" + s + "' for " + what);
    }
}

} // namespace

SceneFactory parse_scene_spec(const std::string& spec) {
    const std::vector<std::string> parts = split(spec, ':');
    if (parts.empty()) throw std::invalid_argument("manifest: empty scene spec");
    const std::string& kind = parts.front();
    const auto want = [&](std::size_t n) {
        if (parts.size() != n + 1)
            throw std::invalid_argument("manifest: scene '" + kind + "' takes " +
                                        std::to_string(n) + " parameter(s), got '" + spec + "'");
    };
    if (kind == "slope") {
        want(1);
        const int n = parse_int(parts[1], "slope block count");
        return [n] { return models::make_slope_with_blocks(n); };
    }
    if (kind == "rocks") {
        want(1);
        const int n = parse_int(parts[1], "rocks count");
        return [n] { return models::make_falling_rocks_with_blocks(n); };
    }
    if (kind == "column") {
        want(1);
        const int n = parse_int(parts[1], "column height");
        return [n] { return models::make_column(n); };
    }
    if (kind == "incline") {
        want(2);
        const double angle = parse_double(parts[1], "incline angle");
        const double friction = parse_double(parts[2], "incline friction");
        return [angle, friction] { return models::make_incline(angle, friction); };
    }
    if (kind == "tunnel") {
        want(0);
        return [] { return models::make_tunnel(); };
    }
    if (kind == "floor") {
        want(0);
        return [] { return models::make_block_on_floor(); };
    }
    if (kind == "free") {
        want(0);
        return [] { return models::make_free_block(); };
    }
    throw std::invalid_argument("manifest: unknown scene kind '" + kind +
                                "' (want slope:N, rocks:N, column:N, incline:A:F, "
                                "tunnel, floor, or free)");
}

std::vector<Job> parse_manifest(std::istream& in, const ManifestDefaults& defaults) {
    std::vector<Job> jobs;
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (!line.empty() && line.back() == '\r') line.pop_back(); // CRLF manifests
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos) line.erase(hash);
        std::istringstream row(line);
        std::string name, spec;
        if (!(row >> name)) continue; // blank / comment-only line
        const auto fail = [&](const std::string& msg) {
            throw std::invalid_argument("manifest line " + std::to_string(lineno) + ": " + msg);
        };
        if (!(row >> spec)) fail("expected '<name> <scene-spec> [steps] [key=value...]'");

        Job job;
        job.name = name;
        job.scene = parse_scene_spec(spec);
        job.config = defaults.config;
        job.mode = defaults.mode;
        job.steps = defaults.steps;

        std::string tok;
        bool steps_seen = false;
        while (row >> tok) {
            const std::size_t eq = tok.find('=');
            if (eq == std::string::npos) {
                if (steps_seen) fail("unexpected token '" + tok + "'");
                job.steps = parse_int(tok, "step count");
                steps_seen = true;
                continue;
            }
            const std::string key = tok.substr(0, eq);
            const std::string val = tok.substr(eq + 1);
            if (key == "mode") {
                if (val == "serial") job.mode = core::EngineMode::Serial;
                else if (val == "gpu") job.mode = core::EngineMode::Gpu;
                else fail("mode must be 'serial' or 'gpu', got '" + val + "'");
            } else if (key == "deadline") {
                job.deadline_ms = parse_double(val, "deadline");
            } else if (key == "retries") {
                job.max_retries = parse_int(val, "retries");
            } else if (key == "steps") {
                job.steps = parse_int(val, "step count");
            } else if (key == "threads") {
                job.config.step_threads = parse_int(val, "step threads");
                if (job.config.step_threads < 0) fail("threads must be >= 0");
            } else if (key == "metrics") {
                if (val == "on") job.config.metrics.enabled = true;
                else if (val == "off") job.config.metrics.enabled = false;
                else fail("metrics must be 'on' or 'off', got '" + val + "'");
            } else if (key == "postmortem") {
                if (val.empty()) fail("postmortem needs a directory");
                job.config.metrics.postmortem_dir = val;
                job.config.metrics.enabled = true; // bundles need the observer
            } else if (key == "fail_after") {
                job.fail_after = parse_int(val, "fail_after");
                if (job.fail_after < 0) fail("fail_after must be >= 0");
            } else if (key == "checkpoint") {
                if (val.empty()) fail("checkpoint needs a file path");
                job.checkpoint_path = val;
            } else if (key == "checkpoint_interval") {
                job.config.checkpoint_interval = parse_int(val, "checkpoint interval");
                if (job.config.checkpoint_interval < 0)
                    fail("checkpoint_interval must be >= 0");
            } else if (key == "resume") {
                if (val == "on") job.resume = true;
                else if (val == "off") job.resume = false;
                else fail("resume must be 'on' or 'off', got '" + val + "'");
            } else if (key == "tenant") {
                if (val.empty()) fail("tenant needs a name");
                job.tenant = val;
            } else {
                fail("unknown key '" + key +
                     "' (want mode=, deadline=, retries=, steps=, threads=, "
                     "metrics=, postmortem=, fail_after=, checkpoint=, "
                     "checkpoint_interval=, resume=, tenant=)");
            }
        }
        if (job.steps < 0) fail("step count must be >= 0");
        jobs.push_back(std::move(job));
    }
    return jobs;
}

std::vector<Job> load_manifest(const std::string& path, const ManifestDefaults& defaults) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("manifest: cannot open '" + path + "'");
    return parse_manifest(in, defaults);
}

} // namespace gdda::sched

#pragma once
// Bounded thread-safe job queue with backpressure and cancellation.
//
// Submission wraps each Job in a shared JobTicket — the single handshake
// object between submitter, queue, and worker. The ticket carries the
// cancellation flag (checked by workers between time steps, and by the queue
// pop so a job cancelled while still queued never starts), the lifecycle
// state, and the final JobResult with its completion notification. JobHandle
// is the submitter-facing view of a ticket.
//
// The queue itself is a classic bounded MPMC channel: push() blocks while
// the queue is full (backpressure towards the manifest reader / RPC layer),
// pop() blocks while it is empty, close() wakes everyone and lets the
// workers drain the remainder.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>

#include "sched/job.hpp"

namespace gdda::sched {

class JobTicket {
public:
    explicit JobTicket(Job job) : job_(std::move(job)) {}

    [[nodiscard]] const Job& job() const { return job_; }
    [[nodiscard]] JobState state() const { return state_.load(std::memory_order_acquire); }
    [[nodiscard]] bool finished() const;

    /// Request cancellation. Queued jobs never start; a running job observes
    /// the flag at its next between-steps check, i.e. it stops within one
    /// time step. Idempotent; a no-op on already-terminal jobs.
    void request_cancel() { cancel_.store(true, std::memory_order_release); }
    [[nodiscard]] bool cancel_requested() const {
        return cancel_.load(std::memory_order_acquire);
    }

    /// Block until the job reaches a terminal state; returns its result.
    const JobResult& wait();

    // -- worker side --------------------------------------------------------
    void mark_running() { state_.store(JobState::Running, std::memory_order_release); }
    /// Publish the terminal result exactly once and wake waiters.
    void finish(JobResult result);
    /// Timestamp bookkeeping for queue_ms (trace::now_us units).
    double submitted_us = 0.0;

private:
    Job job_;
    std::atomic<JobState> state_{JobState::Queued};
    std::atomic<bool> cancel_{false};
    mutable std::mutex mu_;
    std::condition_variable cv_;
    bool done_ = false;
    JobResult result_;
};

/// Submitter-facing view of a submitted job. Cheap to copy; outliving the
/// scheduler is fine (the ticket is shared).
class JobHandle {
public:
    JobHandle() = default;
    explicit JobHandle(std::shared_ptr<JobTicket> t) : ticket_(std::move(t)) {}

    [[nodiscard]] bool valid() const { return ticket_ != nullptr; }
    [[nodiscard]] JobState state() const { return ticket_->state(); }
    [[nodiscard]] bool finished() const { return ticket_->finished(); }
    void cancel() { ticket_->request_cancel(); }
    /// Block until terminal; the reference stays valid while the handle lives.
    const JobResult& result() { return ticket_->wait(); }

private:
    std::shared_ptr<JobTicket> ticket_;
};

class JobQueue {
public:
    /// `capacity` >= 1; pushes beyond it block (backpressure).
    explicit JobQueue(std::size_t capacity);

    /// Blocking push. Returns false (and drops the ticket) when the queue
    /// was closed before space became available.
    bool push(std::shared_ptr<JobTicket> ticket);
    /// Non-blocking push: false when full or closed.
    bool try_push(std::shared_ptr<JobTicket> ticket);

    /// Blocking pop. Skips tickets whose cancellation was requested while
    /// queued (they are finished as Cancelled right here, never started).
    /// Returns nullptr when the queue is closed and fully drained.
    std::shared_ptr<JobTicket> pop();

    /// No more pushes; blocked pushers return false, poppers drain then get
    /// nullptr. Idempotent.
    void close();

    [[nodiscard]] std::size_t size() const;
    [[nodiscard]] std::size_t capacity() const { return capacity_; }
    [[nodiscard]] bool closed() const;

private:
    const std::size_t capacity_;
    mutable std::mutex mu_;
    std::condition_variable not_full_;
    std::condition_variable not_empty_;
    std::deque<std::shared_ptr<JobTicket>> items_;
    bool closed_ = false;
};

} // namespace gdda::sched

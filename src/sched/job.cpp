#include "sched/job.hpp"

namespace gdda::sched {

std::string_view job_state_name(JobState s) {
    switch (s) {
        case JobState::Queued: return "queued";
        case JobState::Running: return "running";
        case JobState::Done: return "done";
        case JobState::Failed: return "failed";
        case JobState::Cancelled: return "cancelled";
        case JobState::DeadlineExceeded: return "deadline_exceeded";
    }
    return "unknown";
}

} // namespace gdda::sched

#include "sched/job.hpp"

#include <cstring>

namespace gdda::sched {

std::string_view job_state_name(JobState s) {
    switch (s) {
        case JobState::Queued: return "queued";
        case JobState::Running: return "running";
        case JobState::Done: return "done";
        case JobState::Failed: return "failed";
        case JobState::Cancelled: return "cancelled";
        case JobState::DeadlineExceeded: return "deadline_exceeded";
    }
    return "unknown";
}

namespace {

inline void fnv1a(std::uint64_t& h, const void* data, std::size_t bytes) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < bytes; ++i) {
        h ^= p[i];
        h *= 1099511628211ull;
    }
}

inline void fnv1a_double(std::uint64_t& h, double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    fnv1a(h, &bits, sizeof bits);
}

} // namespace

std::uint64_t state_fingerprint(const block::BlockSystem& sys) {
    std::uint64_t h = 1469598103934665603ull;
    for (const block::Block& b : sys.blocks) {
        for (const geom::Vec2 v : b.verts) {
            fnv1a_double(h, v.x);
            fnv1a_double(h, v.y);
        }
        for (int k = 0; k < 6; ++k) fnv1a_double(h, b.velocity[k]);
        for (double s : b.stress) fnv1a_double(h, s);
    }
    return h;
}

} // namespace gdda::sched

#include "sched/scheduler.hpp"

#include <algorithm>
#include <stdexcept>

#include "metrics/registry.hpp"
#include "par/thread_budget.hpp"
#include "state/snapshot.hpp"
#include "trace/tracer.hpp"

namespace gdda::sched {

void SchedulerConfig::validate() const {
    if (workers < 1) throw std::invalid_argument("SchedulerConfig: workers must be >= 1");
    if (queue_capacity < 1)
        throw std::invalid_argument("SchedulerConfig: queue_capacity must be >= 1");
    if (inner_threads < 0)
        throw std::invalid_argument("SchedulerConfig: inner_threads must be >= 0");
}

Scheduler::Scheduler(SchedulerConfig cfg, core::EngineFactory factory)
    : cfg_(std::move(cfg)),
      factory_(factory ? std::move(factory) : core::default_engine_factory()),
      queue_(cfg_.queue_capacity) {
    cfg_.validate();
    metrics::Registry& reg = metrics::Registry::global();
    queue_depth_ = &reg.gauge("gdda_sched_queue_depth", "Jobs waiting in the queue");
    busy_workers_ = &reg.gauge("gdda_sched_busy_workers", "Workers currently running a job");
    steps_total_ = &reg.counter("gdda_sched_steps_total", "Engine steps completed under the scheduler");
    reg.gauge("gdda_sched_workers", "Worker pool size").set(static_cast<double>(cfg_.workers));
    pool_.reserve(static_cast<std::size_t>(cfg_.workers));
    for (int lane = 0; lane < cfg_.workers; ++lane)
        pool_.emplace_back([this, lane] { worker_main(lane); });
}

Scheduler::~Scheduler() {
    if (drained_) return;
    cancel_all();
    queue_.close();
    for (std::thread& t : pool_)
        if (t.joinable()) t.join();
}

JobHandle Scheduler::submit(Job job) {
    if (closed_.load(std::memory_order_acquire))
        throw std::runtime_error("Scheduler: submit after drain/close");
    auto ticket = std::make_shared<JobTicket>(std::move(job));
    ticket->submitted_us = trace::now_us();
    {
        std::lock_guard<std::mutex> lock(tickets_mu_);
        if (batch_start_us_ < 0.0) batch_start_us_ = ticket->submitted_us;
        tickets_.push_back(ticket);
    }
    if (!queue_.push(ticket)) {
        // Closed while we were blocked on backpressure: report, don't hang.
        {
            std::lock_guard<std::mutex> lock(tickets_mu_);
            const auto it = std::find(tickets_.begin(), tickets_.end(), ticket);
            if (it != tickets_.end()) tickets_.erase(it);
        }
        throw std::runtime_error("Scheduler: queue closed during submit");
    }
    queue_depth_->set(static_cast<double>(queue_.size()));
    return JobHandle(ticket);
}

std::optional<JobHandle> Scheduler::try_submit(Job job) {
    if (closed_.load(std::memory_order_acquire)) return std::nullopt;
    auto ticket = std::make_shared<JobTicket>(std::move(job));
    ticket->submitted_us = trace::now_us();
    if (!queue_.try_push(ticket)) return std::nullopt;
    {
        std::lock_guard<std::mutex> lock(tickets_mu_);
        if (batch_start_us_ < 0.0) batch_start_us_ = ticket->submitted_us;
        tickets_.push_back(ticket);
    }
    queue_depth_->set(static_cast<double>(queue_.size()));
    return JobHandle(ticket);
}

void Scheduler::cancel_all() {
    std::lock_guard<std::mutex> lock(tickets_mu_);
    for (const auto& t : tickets_) t->request_cancel();
}

BatchReport Scheduler::drain() {
    closed_.store(true, std::memory_order_release);
    queue_.close();
    for (std::thread& t : pool_)
        if (t.joinable()) t.join();
    drained_ = true;

    std::vector<std::shared_ptr<JobTicket>> tickets;
    double start_us;
    {
        std::lock_guard<std::mutex> lock(tickets_mu_);
        tickets = tickets_;
        start_us = batch_start_us_;
    }
    std::vector<JobResult> results;
    results.reserve(tickets.size());
    for (const auto& t : tickets) results.push_back(t->wait());
    const double wall_ms = (start_us < 0.0 || tickets.empty())
                               ? 0.0
                               : (trace::now_us() - start_us) * 1e-3;
    return BatchReport::from(std::move(results), cfg_.workers, wall_ms,
                             trace::device_profile_by_name(cfg_.device));
}

BatchReport Scheduler::run_batch(std::vector<Job> jobs, SchedulerConfig cfg,
                                 core::EngineFactory factory) {
    Scheduler sched(std::move(cfg), std::move(factory));
    for (Job& job : jobs) sched.submit(std::move(job));
    return sched.drain();
}

void Scheduler::worker_main(int lane) {
    // Thread-budget arbitration: cap this worker's inner parallel teams so
    // workers * inner_threads never exceeds the host. inner_threads=1 is the
    // classic one-job-one-core pinning; 0 negotiates a fair share, which on a
    // one-worker scheduler hands the whole machine to the single job. The
    // budget is thread-local, so only this worker's engines are affected —
    // and since every team size is bitwise deterministic, the arbiter can
    // never change a trajectory, only its wall clock.
    par::set_thread_cap(par::negotiate_inner_threads(cfg_.workers, cfg_.inner_threads));
    while (std::shared_ptr<JobTicket> ticket = queue_.pop()) {
        queue_depth_->set(static_cast<double>(queue_.size()));
        busy_workers_->add(1.0);
        ticket->mark_running();
        JobResult result = run_job(*ticket, lane);
        metrics::Registry::global()
            .counter("gdda_sched_jobs_total", "Jobs finished, by terminal state",
                     {{"state", std::string(job_state_name(result.state))}})
            .inc();
        busy_workers_->add(-1.0);
        ticket->finish(std::move(result));
    }
}

JobResult Scheduler::run_job(JobTicket& ticket, int lane) {
    const Job& job = ticket.job();
    JobResult res;
    res.name = job.name;
    res.steps_requested = job.steps;
    res.worker = lane;
    res.queue_ms = ticket.submitted_us > 0.0
                       ? (trace::now_us() - ticket.submitted_us) * 1e-3
                       : 0.0;

    const int attempts_allowed = 1 + std::max(job.max_retries, 0);
    // Held outside the try so the catch path can still dump a post-mortem
    // after the engine (and scene) are gone.
    std::shared_ptr<metrics::EngineObserver> mobs;
    const bool checkpointing = !job.checkpoint_path.empty();
    const int ckpt_interval = job.config.checkpoint_interval;
    // Highest step index any attempt of THIS run has executed; a later
    // attempt stepping at or below it is recomputing (exact waste metric).
    int high_water = 0;
    for (int attempt = 1; attempt <= attempts_allowed; ++attempt) {
        res.attempts = attempt;
        res.step_ms.clear();
        res.steps_done = 0;
        res.resumed_from_step = 0;
        res.pcg_failed_solves = 0;
        res.error.clear();
        // steps_computed / steps_recomputed deliberately NOT reset: they
        // accumulate real engine work across attempts, so report consumers
        // can see recompute waste.
        mobs = nullptr;
        const double t0 = trace::now_us();
        try {
            if (!job.scene)
                throw std::invalid_argument("job '" + job.name + "' has no scene factory");
            block::BlockSystem sys = job.scene();
            std::unique_ptr<core::DdaEngine> engine = factory_(sys, job.config, job.mode);
            if (!engine) throw std::runtime_error("engine factory returned null");

            // Checkpoint resume: a `resume` job restores on its first
            // attempt (crash recovery); any retry attempt restores from the
            // job's own checkpoint instead of recomputing from step 0
            // (retry-without-recompute). A missing file is a normal fresh
            // start; a malformed or mismatched one is a typed, counted
            // rejection that also falls back to fresh — never UB.
            bool resumed = false;
            if (checkpointing && (job.resume || attempt > 1)) {
                try {
                    state::EngineSnapshot snap =
                        state::load_snapshot_file(job.checkpoint_path);
                    state::restore_engine(*engine, snap);
                    res.resumed_from_step = engine->step_index();
                    res.steps_done = res.resumed_from_step;
                    resumed = true;
                    metrics::Registry::global()
                        .counter("gdda_state_recoveries_total",
                                 "Job attempts resumed from a checkpoint")
                        .inc();
                } catch (const state::SnapshotError& ex) {
                    if (ex.code() != state::SnapshotErrorCode::OpenFailed)
                        metrics::Registry::global()
                            .counter("gdda_state_recovery_rejected_total",
                                     "Checkpoints rejected at recovery, by cause",
                                     {{"cause", std::string(state::to_string(ex.code()))}})
                            .inc();
                }
            }

            // Per-worker trace capture: the engine keeps a tracer it built
            // from the job's own config; otherwise collect_traces attaches a
            // fresh per-job one. Either way the ring is exclusively this
            // job's — merging happens later, in write_batch_trace.
            mobs = engine->metrics();
            if (mobs) {
                mobs->set_job(job.name);
                mobs->set_device(cfg_.device);
                if (resumed)
                    mobs->set_checkpoint(job.checkpoint_path, res.resumed_from_step);
            }
            if (job.on_engine) job.on_engine(*engine);

            std::shared_ptr<trace::Tracer> tracer = engine->tracer();
            if (!tracer && cfg_.collect_traces) {
                trace::TraceConfig tc = cfg_.trace;
                tc.enabled = true;
                tc.device = cfg_.device;
                tracer = std::make_shared<trace::Tracer>(tc);
                engine->attach_tracer(tracer);
            }

            JobState verdict = JobState::Done;
            for (int s = res.steps_done; s < job.steps; ++s) {
                if (ticket.cancel_requested()) {
                    verdict = JobState::Cancelled;
                    break;
                }
                if (job.deadline_ms > 0.0 &&
                    (trace::now_us() - t0) * 1e-3 >= job.deadline_ms) {
                    verdict = JobState::DeadlineExceeded;
                    break;
                }
                const double s0 = trace::now_us();
                res.last = engine->step();
                res.step_ms.push_back((trace::now_us() - s0) * 1e-3);
                res.pcg_failed_solves += res.last.pcg_failed_solves;
                steps_total_->inc();
                ++res.steps_done;
                ++res.steps_computed;
                if (res.steps_done <= high_water) ++res.steps_recomputed;
                else high_water = res.steps_done;
                if (checkpointing && ckpt_interval > 0 &&
                    res.steps_done % ckpt_interval == 0 && res.steps_done < job.steps) {
                    state::save_engine_file(job.checkpoint_path, *engine);
                    if (mobs) mobs->set_checkpoint(job.checkpoint_path, res.steps_done);
                }
                // Fault injection fires only on from-scratch attempts, so a
                // resumed rerun of the same manifest sails past the fault —
                // that asymmetry IS the crash-recovery drill.
                if (job.fail_after > 0 && !resumed && res.steps_done >= job.fail_after)
                    throw std::runtime_error("fault injection: job '" + job.name +
                                             "' failed after " +
                                             std::to_string(res.steps_done) +
                                             " steps (fail_after)");
            }

            // Terminal checkpoint: the job's state survives for later
            // resume (cancel/deadline) or as the session's durable result.
            if (checkpointing && res.steps_done > 0) {
                state::save_engine_file(job.checkpoint_path, *engine);
                if (mobs) mobs->set_checkpoint(job.checkpoint_path, res.steps_done);
            }

            res.state = verdict;
            res.sim_time = engine->time();
            res.last_max_velocity = engine->last_max_velocity();
            res.timers.merge(engine->timers());
            res.ledgers.merge(engine->ledgers());
            if (res.steps_done > 0) res.state_hash = state_fingerprint(sys);
            // A deadline kill is a diagnosable failure: the state is still
            // alive here, so the bundle gets a real fingerprint.
            if (verdict == JobState::DeadlineExceeded && mobs)
                mobs->dump_postmortem("deadline_exceeded", "", res.state_hash);
            if (mobs) res.postmortem_path = mobs->postmortem_path();
            if (tracer) {
                // Detach first so the engine's spans are all closed and this
                // thread's kernel hook is cleared before we snapshot.
                engine->attach_tracer(nullptr);
                res.trace_events = tracer->snapshot();
                res.trace_dropped = tracer->events_dropped();
            }
            res.wall_ms = (trace::now_us() - t0) * 1e-3;
            return res;
        } catch (const std::exception& ex) {
            res.state = JobState::Failed;
            res.error = ex.what();
        } catch (...) {
            res.state = JobState::Failed;
            res.error = "unknown exception";
        }
        res.wall_ms = (trace::now_us() - t0) * 1e-3;
        // Only genuine failures retry; cancellation is honored between
        // attempts as well.
        if (ticket.cancel_requested()) {
            res.state = JobState::Cancelled;
            return res;
        }
    }
    // All attempts failed: dump the flight recorder of the last attempt.
    // The engine and scene died with the throw, so the fingerprint is 0
    // ("state unavailable") — the ring still holds the last completed steps.
    if (res.state == JobState::Failed && mobs) {
        mobs->dump_postmortem("failed", res.error, 0);
        res.postmortem_path = mobs->postmortem_path();
    }
    return res;
}

} // namespace gdda::sched

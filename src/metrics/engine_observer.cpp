#include "metrics/engine_observer.hpp"

#include "block/block_system.hpp"
#include "metrics/registry.hpp"

namespace gdda::metrics {

EngineObserver::EngineObserver(MetricsConfig cfg, std::string mode, Registry* reg)
    : cfg_(std::move(cfg)),
      mode_(std::move(mode)),
      reg_(reg ? reg : &Registry::global()),
      health_(cfg_.rules),
      flight_(cfg_.flight_recorder_capacity) {
    Registry& r = *reg_;
    const Labels ml = {{"mode", mode_}};
    steps_total_ = &r.counter("gdda_engine_steps_total", "Completed DDA time steps", ml);
    unconverged_steps_total_ = &r.counter("gdda_engine_unconverged_steps_total",
                                          "Steps whose open-close loop gave up", ml);
    retries_total_ = &r.counter("gdda_engine_retries_total",
                                "Step retries (displacement control re-runs)", ml);
    open_close_iters_total_ =
        &r.counter("gdda_engine_open_close_iters_total", "Open-close (loop-3) iterations", ml);
    oc_cap_hits_total_ = &r.counter("gdda_engine_oc_cap_hits_total",
                                    "Steps that hit the open-close iteration cap", ml);
    pcg_solves_ok_total_ = &r.counter("gdda_pcg_solves_total", "PCG solves by outcome",
                                      {{"mode", mode_}, {"converged", "true"}});
    pcg_solves_failed_total_ = &r.counter("gdda_pcg_solves_total", "PCG solves by outcome",
                                          {{"mode", mode_}, {"converged", "false"}});
    pcg_iterations_total_ =
        &r.counter("gdda_pcg_iterations_total", "PCG iterations summed over solves", ml);
    pcg_refine_iterations_total_ = &r.counter(
        "gdda_pcg_refine_iterations_total",
        "fp64 refinement passes of the mixed-precision PCG solver", ml);
    pcg_fp32_iterations_total_ = &r.counter(
        "gdda_pcg_fp32_iterations_total",
        "fp32 inner PCG iterations of the mixed-precision solver", ml);
    pcg_mixed_fallbacks_total_ = &r.counter(
        "gdda_pcg_mixed_fallbacks_total",
        "Mixed-precision solves that fell back to strict fp64", ml);
    pair_cache_hits_total_ = &r.counter("gdda_pair_cache_hits_total",
                                        "Broad-phase candidate cache reuses", ml);
    pair_cache_misses_total_ = &r.counter("gdda_pair_cache_misses_total",
                                          "Broad-phase candidate cache rebuilds", ml);
    for (int m = 0; m < obs::kModuleCount; ++m)
        kernel_launches_total_[m] =
            &r.counter("gdda_kernel_launches_total", "SIMT kernel launches per pipeline module",
                       {{"mode", mode_}, {"module", std::string(obs::kModuleKeys[m])}});
    health_events_warn_total_ = &r.counter("gdda_engine_health_events_total",
                                           "Health watchdog verdicts by grade",
                                           {{"mode", mode_}, {"grade", "warn"}});
    health_events_critical_total_ = &r.counter("gdda_engine_health_events_total",
                                               "Health watchdog verdicts by grade",
                                               {{"mode", mode_}, {"grade", "critical"}});
    contacts_ = &r.gauge("gdda_engine_contacts", "Contacts after the last step", ml);
    active_contacts_ =
        &r.gauge("gdda_engine_active_contacts", "Non-open contacts after the last step", ml);
    max_penetration_ =
        &r.gauge("gdda_engine_max_penetration_m", "Worst residual interpenetration (m)", ml);
    pcg_final_residual_ =
        &r.gauge("gdda_pcg_final_residual", "Relative residual of the last PCG solve", ml);
    energy_joules_ =
        &r.gauge("gdda_engine_energy_joules", "Total mechanical energy after the last step", ml);
    health_grade_ =
        &r.gauge("gdda_engine_health_grade", "Current health grade (0 ok, 1 warn, 2 critical)",
                 ml);
    parallel_coverage_ = &r.gauge(
        "gdda_engine_parallel_coverage",
        "Fraction of the last step spent in dispatch-eligible parallel regions", ml);
    parallel_seconds_ = &r.gauge(
        "gdda_engine_parallel_seconds",
        "Seconds of the last step spent in dispatch-eligible parallel regions", ml);
    step_seconds_ = &r.histogram("gdda_engine_step_seconds", default_latency_buckets(),
                                 "Wall-clock step latency (s)", ml);
}

std::shared_ptr<EngineObserver> EngineObserver::from_config(const MetricsConfig& cfg,
                                                            std::string mode) {
    if (!cfg.enabled) return nullptr;
    return std::make_shared<EngineObserver>(cfg, std::move(mode));
}

void EngineObserver::on_step(const obs::StepRecord& rec, const StepContext& ctx) {
    steps_total_->inc();
    if (!rec.converged) unconverged_steps_total_->inc();
    retries_total_->inc(static_cast<std::uint64_t>(rec.retries));
    open_close_iters_total_->inc(static_cast<std::uint64_t>(rec.open_close_iters));
    if (ctx.open_close_cap > 0 && rec.open_close_iters >= ctx.open_close_cap)
        oc_cap_hits_total_->inc();
    const int failed = rec.pcg_failed_solves;
    const int ok = rec.pcg_solves - failed;
    if (ok > 0) pcg_solves_ok_total_->inc(static_cast<std::uint64_t>(ok));
    if (failed > 0) pcg_solves_failed_total_->inc(static_cast<std::uint64_t>(failed));
    pcg_iterations_total_->inc(static_cast<std::uint64_t>(rec.pcg_iterations));
    pcg_refine_iterations_total_->inc(static_cast<std::uint64_t>(rec.pcg_refine_iterations));
    pcg_fp32_iterations_total_->inc(static_cast<std::uint64_t>(rec.pcg_fp32_iterations));
    pcg_mixed_fallbacks_total_->inc(static_cast<std::uint64_t>(rec.pcg_mixed_fallbacks));
    if (ctx.pair_cache_state == 1)
        pair_cache_hits_total_->inc();
    else if (ctx.pair_cache_state == 0)
        pair_cache_misses_total_->inc();
    for (int m = 0; m < obs::kModuleCount; ++m)
        if (rec.modules[m].launches > 0)
            kernel_launches_total_[m]->inc(static_cast<std::uint64_t>(rec.modules[m].launches));
    contacts_->set(static_cast<double>(rec.contacts));
    active_contacts_->set(static_cast<double>(rec.active_contacts));
    max_penetration_->set(rec.max_penetration);
    if (!rec.solves.empty()) pcg_final_residual_->set(rec.solves.back().final_residual);
    if (ctx.has_energy) energy_joules_->set(ctx.energy_total);
    if (ctx.step_seconds > 0.0) {
        const double cov = ctx.parallel_seconds / ctx.step_seconds;
        parallel_coverage_->set(cov < 0.0 ? 0.0 : (cov > 1.0 ? 1.0 : cov));
        parallel_seconds_->set(ctx.parallel_seconds < 0.0 ? 0.0 : ctx.parallel_seconds);
    }
    step_seconds_->observe(rec.seconds_total());

    flight_.push(rec);
    ledger_.on_step(rec);

    if (cfg_.health) {
        HealthSample s;
        s.step = rec.step;
        s.latency_s = rec.seconds_total();
        s.pcg_failed_solves = rec.pcg_failed_solves;
        s.step_converged = rec.converged;
        s.open_close_iters = rec.open_close_iters;
        s.open_close_cap = ctx.open_close_cap;
        s.max_penetration = rec.max_penetration;
        s.length_scale = ctx.length_scale;
        s.has_energy = ctx.has_energy;
        s.energy_total = ctx.energy_total;
        const HealthVerdict v = health_.evaluate(s);
        health_grade_->set(static_cast<double>(static_cast<int>(v.grade)));
        if (v.grade == HealthGrade::Warn) health_events_warn_total_->inc();
        if (v.grade == HealthGrade::Critical) {
            health_events_critical_total_->inc();
            // First Critical verdict dumps a bundle (once per engine): this
            // is the "job is dying" artifact even when nothing throws.
            if (!critical_dumped_ && !cfg_.postmortem_dir.empty()) {
                critical_dumped_ = true;
                dump_postmortem("health_critical", v.rule + ": " + v.detail,
                                ctx.sys ? block::state_fingerprint(*ctx.sys) : 0);
            }
        }
    }
}

bool EngineObserver::dump_postmortem(const std::string& reason, const std::string& error,
                                     std::uint64_t fingerprint, std::string* path_out,
                                     std::string* err) {
    if (cfg_.postmortem_dir.empty()) {
        if (err) *err = "no postmortem_dir configured";
        return false;
    }
    PostmortemContext ctx;
    ctx.job = job_;
    ctx.mode = mode_;
    ctx.reason = reason;
    ctx.error = error;
    ctx.device = device_;
    ctx.state_fingerprint = fingerprint;
    ctx.checkpoint_path = checkpoint_path_;
    ctx.checkpoint_step = checkpoint_step_;
    ctx.config = config_json_;
    ctx.recorder = &flight_;
    ctx.health = cfg_.health ? &health_ : nullptr;
    ctx.ledger = &ledger_;
    ctx.registry = reg_;
    std::string path;
    if (!write_postmortem(ctx, cfg_.postmortem_dir, &path, err)) return false;
    postmortem_path_ = path;
    reg_->counter("gdda_postmortems_total", "Post-mortem bundles written",
                  {{"reason", reason}})
        .inc();
    if (path_out) *path_out = path;
    return true;
}

} // namespace gdda::metrics

#pragma once
// Failure flight recorder: a bounded ring of the last-N obs::StepRecords
// plus the post-mortem bundle builder. The ring rides the step path (one
// record copy per step, no allocation once warm); the bundle is assembled
// only at dump time — when a job dies or health goes Critical — so the
// happy path pays nothing for diagnosability.
//
// Bundle schema: gdda.metrics.postmortem v1 (documented in
// docs/OBSERVABILITY.md, validated by metrics::validate_postmortem and
// `obs_validate --postmortem`).

#include <cstdint>
#include <string>
#include <vector>

#include "metrics/health.hpp"
#include "obs/aggregator.hpp"
#include "obs/record.hpp"

namespace gdda::metrics {

class Registry;

/// Bounded ring of step records, oldest evicted first.
class FlightRecorder {
public:
    explicit FlightRecorder(std::size_t capacity);

    void push(const obs::StepRecord& rec);

    [[nodiscard]] std::size_t capacity() const { return capacity_; }
    [[nodiscard]] std::size_t size() const { return full_ ? capacity_ : next_; }
    /// Retained records, oldest first.
    [[nodiscard]] std::vector<const obs::StepRecord*> tail() const;

private:
    std::size_t capacity_;
    std::vector<obs::StepRecord> ring_;
    std::size_t next_ = 0;
    bool full_ = false;
};

/// Everything a post-mortem bundle captures. Pointers may be null — the
/// corresponding section is then omitted (the validator treats records,
/// config and health as required, so engine-produced bundles always carry
/// them).
struct PostmortemContext {
    std::string job;    ///< scheduler job name ("" for a bare engine)
    std::string mode;   ///< "serial" | "gpu"
    std::string reason; ///< "failed" | "deadline_exceeded" | "health_critical"
    std::string error;  ///< exception text for reason=="failed"
    std::string device; ///< modeled device profile name
    std::uint64_t state_fingerprint = 0; ///< 0 when the state died with the job
    /// Most recent checkpoint of the job ("" = job was not checkpointed).
    /// Makes a post-mortem directly actionable into a resume: the bundle
    /// names the snapshot file and the step it holds.
    std::string checkpoint_path;
    int checkpoint_step = 0;
    obs::JsonValue config = obs::JsonValue::object(); ///< engine SimConfig summary
    const FlightRecorder* recorder = nullptr;
    const HealthMonitor* health = nullptr;
    const obs::Aggregator* ledger = nullptr; ///< cumulative module/kernel totals
    const Registry* registry = nullptr;      ///< live metrics snapshot source
};

/// Assemble the self-contained bundle document.
[[nodiscard]] obs::JsonValue build_postmortem(const PostmortemContext& ctx);

/// Deterministic bundle filename: postmortem_<job>_<reason>.json with both
/// parts sanitized to [A-Za-z0-9_-]. No timestamp — reruns overwrite, and
/// tests/CI can predict the path.
[[nodiscard]] std::string postmortem_filename(const std::string& job, const std::string& reason);

/// Build and write the bundle into `dir` (created if missing). Fills
/// `path_out` with the written path on success; returns false + `err` on
/// any filesystem failure.
bool write_postmortem(const PostmortemContext& ctx, const std::string& dir,
                      std::string* path_out = nullptr, std::string* err = nullptr);

} // namespace gdda::metrics

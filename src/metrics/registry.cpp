#include "metrics/registry.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace gdda::metrics {

namespace {

bool valid_metric_name(const std::string& name) {
    if (name.empty()) return false;
    auto head = [](char c) {
        return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
    };
    if (!head(name[0])) return false;
    for (char c : name)
        if (!head(c) && !(c >= '0' && c <= '9')) return false;
    return true;
}

void append_escaped(std::string& out, const std::string& v) {
    for (char c : v) {
        switch (c) {
        case '\\': out += "\\\\"; break;
        case '"': out += "\\\""; break;
        case '\n': out += "\\n"; break;
        default: out += c;
        }
    }
}

std::string format_double(double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

std::string format_count(std::uint64_t v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
    return buf;
}

obs::JsonValue labels_json(const Labels& labels) {
    obs::JsonValue o = obs::JsonValue::object();
    for (const auto& [k, v] : labels) o.set(k, obs::JsonValue::string(v));
    return o;
}

} // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
    if (bounds_.empty()) throw std::invalid_argument("histogram needs at least one bucket bound");
    for (std::size_t i = 1; i < bounds_.size(); ++i)
        if (!(bounds_[i] > bounds_[i - 1]))
            throw std::invalid_argument("histogram bounds must be strictly increasing");
    buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
    for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double v) {
    // First bucket whose upper edge admits v; falls through to +Inf.
    std::size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i]) ++i;
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
    }
}

void Histogram::reset() {
    for (std::size_t i = 0; i <= bounds_.size(); ++i)
        buckets_[i].store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
}

std::vector<double> default_latency_buckets() {
    return {1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0, 10.0};
}

std::string_view metric_kind_name(MetricKind k) {
    switch (k) {
    case MetricKind::Counter: return "counter";
    case MetricKind::Gauge: return "gauge";
    case MetricKind::Histogram: return "histogram";
    }
    return "counter";
}

std::string render_labels(const Labels& labels) {
    if (labels.empty()) return "";
    std::string out = "{";
    bool first = true;
    for (const auto& [k, v] : labels) {
        if (!first) out += ',';
        first = false;
        out += k;
        out += "=\"";
        append_escaped(out, v);
        out += '"';
    }
    out += '}';
    return out;
}

Registry& Registry::global() {
    static Registry reg;
    return reg;
}

Registry::Family& Registry::family_locked(const std::string& name, const std::string& help,
                                          MetricKind kind) {
    for (auto& f : families_) {
        if (f->name != name) continue;
        if (f->kind != kind)
            throw std::invalid_argument("metric family '" + name + "' already registered as " +
                                        std::string(metric_kind_name(f->kind)));
        if (f->help.empty() && !help.empty()) f->help = help;
        return *f;
    }
    if (!valid_metric_name(name))
        throw std::invalid_argument("invalid metric name '" + name + "'");
    auto f = std::make_unique<Family>();
    f->name = name;
    f->help = help;
    f->kind = kind;
    families_.push_back(std::move(f));
    return *families_.back();
}

Registry::Series& Registry::series_locked(Family& fam, const Labels& labels) {
    const std::string key = render_labels(labels);
    for (auto& s : fam.series)
        if (s->key == key) return *s;
    auto s = std::make_unique<Series>();
    s->labels = labels;
    s->key = key;
    switch (fam.kind) {
    case MetricKind::Counter: s->counter = std::make_unique<Counter>(); break;
    case MetricKind::Gauge: s->gauge = std::make_unique<Gauge>(); break;
    case MetricKind::Histogram: s->histogram = std::make_unique<Histogram>(fam.bounds); break;
    }
    fam.series.push_back(std::move(s));
    return *fam.series.back();
}

Counter& Registry::counter(const std::string& name, const std::string& help,
                           const Labels& labels) {
    std::lock_guard lock(mu_);
    Family& fam = family_locked(name, help, MetricKind::Counter);
    return *series_locked(fam, labels).counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help, const Labels& labels) {
    std::lock_guard lock(mu_);
    Family& fam = family_locked(name, help, MetricKind::Gauge);
    return *series_locked(fam, labels).gauge;
}

Histogram& Registry::histogram(const std::string& name, const std::vector<double>& bounds,
                               const std::string& help, const Labels& labels) {
    std::lock_guard lock(mu_);
    Family& fam = family_locked(name, help, MetricKind::Histogram);
    if (fam.bounds.empty() && fam.series.empty()) {
        Histogram probe(bounds); // validates edges
        fam.bounds = bounds;
    } else if (fam.bounds != bounds) {
        throw std::invalid_argument("histogram family '" + name +
                                    "' registered with different bucket bounds");
    }
    return *series_locked(fam, labels).histogram;
}

std::size_t Registry::size() const {
    std::lock_guard lock(mu_);
    std::size_t n = 0;
    for (const auto& f : families_) n += f->series.size();
    return n;
}

std::size_t Registry::family_count() const {
    std::lock_guard lock(mu_);
    return families_.size();
}

std::string Registry::render_prometheus() const {
    std::lock_guard lock(mu_);
    std::string out;
    for (const auto& f : families_) {
        if (!f->help.empty()) {
            out += "# HELP " + f->name + ' ';
            append_escaped(out, f->help);
            out += '\n';
        }
        out += "# TYPE " + f->name + ' ';
        out += metric_kind_name(f->kind);
        out += '\n';
        for (const auto& s : f->series) {
            switch (f->kind) {
            case MetricKind::Counter:
                out += f->name + s->key + ' ' + format_count(s->counter->value()) + '\n';
                break;
            case MetricKind::Gauge:
                out += f->name + s->key + ' ' + format_double(s->gauge->value()) + '\n';
                break;
            case MetricKind::Histogram: {
                const Histogram& h = *s->histogram;
                std::uint64_t cum = 0;
                for (std::size_t i = 0; i <= h.bounds().size(); ++i) {
                    cum += h.bucket_value(i);
                    Labels bl = s->labels;
                    bl.emplace_back("le", i < h.bounds().size() ? format_double(h.bounds()[i])
                                                                : std::string("+Inf"));
                    out += f->name + "_bucket" + render_labels(bl) + ' ' + format_count(cum) +
                           '\n';
                }
                out += f->name + "_sum" + s->key + ' ' + format_double(h.sum()) + '\n';
                out += f->name + "_count" + s->key + ' ' + format_count(h.count()) + '\n';
                break;
            }
            }
        }
    }
    return out;
}

obs::JsonValue Registry::snapshot_json() const {
    std::lock_guard lock(mu_);
    obs::JsonValue doc = obs::JsonValue::object();
    doc.set("schema", obs::JsonValue::string(std::string(kSnapshotSchemaName)));
    doc.set("version", obs::JsonValue::integer(kMetricsSchemaVersion));
    std::size_t n = 0;
    for (const auto& f : families_) n += f->series.size();
    doc.set("size", obs::JsonValue::integer(static_cast<long long>(n)));
    obs::JsonValue fams = obs::JsonValue::array();
    for (const auto& f : families_) {
        obs::JsonValue fj = obs::JsonValue::object();
        fj.set("name", obs::JsonValue::string(f->name));
        fj.set("kind", obs::JsonValue::string(std::string(metric_kind_name(f->kind))));
        if (!f->help.empty()) fj.set("help", obs::JsonValue::string(f->help));
        obs::JsonValue series = obs::JsonValue::array();
        for (const auto& s : f->series) {
            obs::JsonValue sj = obs::JsonValue::object();
            sj.set("labels", labels_json(s->labels));
            switch (f->kind) {
            case MetricKind::Counter:
                sj.set("value",
                       obs::JsonValue::integer(static_cast<long long>(s->counter->value())));
                break;
            case MetricKind::Gauge:
                sj.set("value", obs::JsonValue::number(s->gauge->value()));
                break;
            case MetricKind::Histogram: {
                const Histogram& h = *s->histogram;
                sj.set("count",
                       obs::JsonValue::integer(static_cast<long long>(h.count())));
                sj.set("sum", obs::JsonValue::number(h.sum()));
                obs::JsonValue buckets = obs::JsonValue::array();
                std::uint64_t cum = 0;
                for (std::size_t i = 0; i <= h.bounds().size(); ++i) {
                    cum += h.bucket_value(i);
                    obs::JsonValue b = obs::JsonValue::object();
                    if (i < h.bounds().size())
                        b.set("le", obs::JsonValue::number(h.bounds()[i]));
                    else
                        b.set("le", obs::JsonValue::string("+Inf"));
                    b.set("count", obs::JsonValue::integer(static_cast<long long>(cum)));
                    buckets.push(std::move(b));
                }
                sj.set("buckets", std::move(buckets));
                break;
            }
            }
            series.push(std::move(sj));
        }
        fj.set("series", std::move(series));
        fams.push(std::move(fj));
    }
    doc.set("families", std::move(fams));
    return doc;
}

void Registry::reset_values() {
    std::lock_guard lock(mu_);
    for (const auto& f : families_)
        for (const auto& s : f->series) {
            if (s->counter) s->counter->reset();
            if (s->gauge) s->gauge->reset();
            if (s->histogram) s->histogram->reset();
        }
}

bool write_exposition_file(const std::string& path, const Registry& reg, std::string* err) {
    std::ofstream out(path, std::ios::out | std::ios::trunc);
    if (!out) {
        if (err) *err = "cannot open '" + path + "' for writing";
        return false;
    }
    out << reg.render_prometheus();
    out.flush();
    if (!out) {
        if (err) *err = "write to '" + path + "' failed";
        return false;
    }
    return true;
}

} // namespace gdda::metrics

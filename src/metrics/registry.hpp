#pragma once
// Process-wide live-metrics registry: atomic counters, gauges, and
// fixed-bucket histograms grouped into named families, rendered as
// Prometheus text exposition or a JSON snapshot.
//
// Design constraints (docs/OBSERVABILITY.md):
//  - Hot-path writes are lock-free: instruments are plain atomics, and the
//    registry hands them out by stable reference so callers resolve a name
//    once (under the registry mutex) and then increment through a cached
//    pointer. No allocation, no hashing, no locking per step.
//  - Strictly observer-only: nothing in here feeds back into the
//    simulation; the bitwise state_fingerprint contract must hold with the
//    registry hot or cold (guarded by tests + bench_metrics_overhead).
//  - Snapshots are merely *consistent enough*: values are read with relaxed
//    atomics while writers keep running, so a scrape can see a histogram
//    count that is momentarily ahead of its sum. Fine for monitoring; the
//    exact per-step history lives in gdda::obs records.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"

namespace gdda::metrics {

inline constexpr std::string_view kSnapshotSchemaName = "gdda.metrics.snapshot";
inline constexpr std::string_view kPostmortemSchemaName = "gdda.metrics.postmortem";
/// Layout revision of both the snapshot JSON and the post-mortem bundle.
inline constexpr int kMetricsSchemaVersion = 1;

/// Label set of one series, rendered in the given order. Callers must use a
/// consistent order: {a=1,b=2} and {b=2,a=1} are distinct series.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic event count.
class Counter {
public:
    void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
    [[nodiscard]] std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
    void reset() { v_.store(0, std::memory_order_relaxed); }

private:
    std::atomic<std::uint64_t> v_{0};
};

/// Point-in-time double value.
class Gauge {
public:
    void set(double v) { v_.store(v, std::memory_order_relaxed); }
    void add(double d) {
        double cur = v_.load(std::memory_order_relaxed);
        while (!v_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
        }
    }
    [[nodiscard]] double value() const { return v_.load(std::memory_order_relaxed); }
    void reset() { v_.store(0.0, std::memory_order_relaxed); }

private:
    std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram (Prometheus semantics: `bounds` are inclusive
/// upper edges; an implicit +Inf bucket catches the rest).
class Histogram {
public:
    explicit Histogram(std::vector<double> bounds);

    void observe(double v);

    [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
    /// Raw (non-cumulative) count of bucket i; i == bounds().size() is +Inf.
    [[nodiscard]] std::uint64_t bucket_value(std::size_t i) const {
        return buckets_[i].load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
    [[nodiscard]] double sum() const { return sum_.load(std::memory_order_relaxed); }
    void reset();

private:
    std::vector<double> bounds_;
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
    std::atomic<double> sum_{0.0};
    std::atomic<std::uint64_t> count_{0};
};

/// Default latency buckets (seconds), 100us..10s, ~3x spacing.
[[nodiscard]] std::vector<double> default_latency_buckets();

enum class MetricKind { Counter, Gauge, Histogram };
[[nodiscard]] std::string_view metric_kind_name(MetricKind k);

/// Thread-safe family/series registry. Lookup is mutex-guarded and intended
/// to happen once per engine/scheduler construction; the returned instrument
/// references stay valid for the registry's lifetime.
class Registry {
public:
    Registry() = default;
    Registry(const Registry&) = delete;
    Registry& operator=(const Registry&) = delete;

    /// The process-wide registry every subsystem instruments by default.
    static Registry& global();

    /// Get-or-create. Throws std::invalid_argument on an invalid metric
    /// name, a kind clash with an existing family, or (histograms) bounds
    /// that are empty/non-increasing or differ from the family's.
    Counter& counter(const std::string& name, const std::string& help = "",
                     const Labels& labels = {});
    Gauge& gauge(const std::string& name, const std::string& help = "",
                 const Labels& labels = {});
    Histogram& histogram(const std::string& name, const std::vector<double>& bounds,
                         const std::string& help = "", const Labels& labels = {});

    /// Number of series (instruments) across all families.
    [[nodiscard]] std::size_t size() const;
    [[nodiscard]] std::size_t family_count() const;

    /// Prometheus text exposition (format version 0.0.4): # HELP / # TYPE
    /// headers, one sample line per series, histograms expanded into
    /// cumulative _bucket/_sum/_count samples.
    [[nodiscard]] std::string render_prometheus() const;

    /// JSON snapshot document (schema gdda.metrics.snapshot v1).
    [[nodiscard]] obs::JsonValue snapshot_json() const;

    /// Zero every instrument's value, keeping the families/series intact
    /// (their references stay valid). For tests and benches that share the
    /// global registry.
    void reset_values();

private:
    struct Series {
        Labels labels;
        std::string key; ///< canonical rendered label block, e.g. {a="1",b="2"}
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };
    struct Family {
        std::string name;
        std::string help;
        MetricKind kind = MetricKind::Counter;
        std::vector<double> bounds; ///< histograms only
        std::vector<std::unique_ptr<Series>> series;
    };

    Family& family_locked(const std::string& name, const std::string& help, MetricKind kind);
    Series& series_locked(Family& fam, const Labels& labels);

    mutable std::mutex mu_;
    std::vector<std::unique_ptr<Family>> families_; ///< insertion order (stable output)
};

/// Render one label set the way the exposition does: `{k="v",...}`, with
/// backslash/quote/newline escaped; empty labels render as "".
[[nodiscard]] std::string render_labels(const Labels& labels);

/// Render `registry.render_prometheus()` into a file (truncate). Returns
/// false and fills `err` when the file cannot be written.
bool write_exposition_file(const std::string& path, const Registry& reg, std::string* err = nullptr);

} // namespace gdda::metrics

#include "metrics/flight_recorder.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "metrics/registry.hpp"

#ifndef GDDA_GIT_SHA
#define GDDA_GIT_SHA "unknown"
#endif

namespace gdda::metrics {

FlightRecorder::FlightRecorder(std::size_t capacity) : capacity_(std::max<std::size_t>(capacity, 1)) {
    ring_.reserve(capacity_);
}

void FlightRecorder::push(const obs::StepRecord& rec) {
    if (ring_.size() < capacity_) {
        ring_.push_back(rec);
        next_ = ring_.size() % capacity_;
        full_ = ring_.size() == capacity_;
        return;
    }
    ring_[next_] = rec;
    next_ = (next_ + 1) % capacity_;
}

std::vector<const obs::StepRecord*> FlightRecorder::tail() const {
    std::vector<const obs::StepRecord*> out;
    out.reserve(size());
    const std::size_t n = size();
    const std::size_t start = full_ ? next_ : 0;
    for (std::size_t i = 0; i < n; ++i) out.push_back(&ring_[(start + i) % capacity_]);
    return out;
}

namespace {

std::string fingerprint_hex(std::uint64_t fp) {
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(fp));
    return buf;
}

std::string sanitize(const std::string& s) {
    std::string out;
    for (char c : s) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == '-';
        out += ok ? c : '_';
    }
    return out.empty() ? std::string("job") : out;
}

} // namespace

obs::JsonValue build_postmortem(const PostmortemContext& ctx) {
    obs::JsonValue doc = obs::JsonValue::object();
    doc.set("schema", obs::JsonValue::string(std::string(kPostmortemSchemaName)));
    doc.set("version", obs::JsonValue::integer(kMetricsSchemaVersion));

    obs::JsonValue meta = obs::JsonValue::object();
    meta.set("git_sha", obs::JsonValue::string(GDDA_GIT_SHA));
    meta.set("device_profile", obs::JsonValue::string(ctx.device));
    if (ctx.registry)
        meta.set("metrics_registry_size",
                 obs::JsonValue::integer(static_cast<long long>(ctx.registry->size())));
    doc.set("meta", std::move(meta));

    doc.set("job", obs::JsonValue::string(ctx.job));
    doc.set("mode", obs::JsonValue::string(ctx.mode));
    doc.set("reason", obs::JsonValue::string(ctx.reason));
    if (!ctx.error.empty()) doc.set("error", obs::JsonValue::string(ctx.error));
    doc.set("state_fingerprint", obs::JsonValue::string(fingerprint_hex(ctx.state_fingerprint)));
    if (!ctx.checkpoint_path.empty()) {
        // Actionable recovery pointer: resume this job from here instead of
        // step 0 (gdda-serve --resume, docs/STATE.md).
        obs::JsonValue ckpt = obs::JsonValue::object();
        ckpt.set("path", obs::JsonValue::string(ctx.checkpoint_path));
        ckpt.set("step", obs::JsonValue::integer(ctx.checkpoint_step));
        doc.set("checkpoint", std::move(ckpt));
    }
    doc.set("config", ctx.config);

    obs::JsonValue records = obs::JsonValue::array();
    if (ctx.recorder)
        for (const obs::StepRecord* rec : ctx.recorder->tail()) records.push(obs::to_json(*rec));
    doc.set("records", std::move(records));

    obs::JsonValue health = obs::JsonValue::object();
    if (ctx.health) {
        health.set("grade", obs::JsonValue::string(
                                std::string(health_grade_name(ctx.health->grade()))));
        health.set("worst", obs::JsonValue::string(
                                std::string(health_grade_name(ctx.health->worst()))));
        obs::JsonValue verdicts = obs::JsonValue::array();
        for (const HealthVerdict& v : ctx.health->recent()) {
            obs::JsonValue vj = obs::JsonValue::object();
            vj.set("step", obs::JsonValue::integer(v.step));
            vj.set("grade", obs::JsonValue::string(std::string(health_grade_name(v.grade))));
            vj.set("rule", obs::JsonValue::string(v.rule));
            vj.set("detail", obs::JsonValue::string(v.detail));
            verdicts.push(std::move(vj));
        }
        health.set("verdicts", std::move(verdicts));
    } else {
        health.set("grade", obs::JsonValue::string("ok"));
        health.set("worst", obs::JsonValue::string("ok"));
        health.set("verdicts", obs::JsonValue::array());
    }
    doc.set("health", std::move(health));

    if (ctx.ledger) {
        // Cumulative kernel/module ledger over the whole run (not just the
        // ring window): launches + analytic cost totals per module.
        obs::JsonValue ledger = obs::JsonValue::object();
        for (int m = 0; m < obs::kModuleCount; ++m) {
            const obs::ModuleRecord& a = ctx.ledger->module(m);
            obs::JsonValue mj = obs::JsonValue::object();
            mj.set("seconds", obs::JsonValue::number(a.seconds));
            mj.set("launches", obs::JsonValue::integer(a.launches));
            mj.set("flops", obs::JsonValue::number(a.flops));
            mj.set("bytes_coalesced", obs::JsonValue::number(a.bytes_coalesced));
            mj.set("bytes_texture", obs::JsonValue::number(a.bytes_texture));
            mj.set("bytes_random", obs::JsonValue::number(a.bytes_random));
            ledger.set(std::string(obs::kModuleKeys[m]), std::move(mj));
        }
        doc.set("kernel_ledger", std::move(ledger));
        doc.set("steps_total", obs::JsonValue::integer(ctx.ledger->steps()));
    }

    if (ctx.registry) doc.set("metrics", ctx.registry->snapshot_json());
    return doc;
}

std::string postmortem_filename(const std::string& job, const std::string& reason) {
    return "postmortem_" + sanitize(job) + "_" + sanitize(reason) + ".json";
}

bool write_postmortem(const PostmortemContext& ctx, const std::string& dir,
                      std::string* path_out, std::string* err) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        if (err) *err = "cannot create post-mortem dir '" + dir + "': " + ec.message();
        return false;
    }
    const std::string path =
        (std::filesystem::path(dir) / postmortem_filename(ctx.job, ctx.reason)).string();
    std::ofstream out(path, std::ios::out | std::ios::trunc);
    if (!out) {
        if (err) *err = "cannot open '" + path + "' for writing";
        return false;
    }
    out << build_postmortem(ctx).dump() << '\n';
    out.flush();
    if (!out) {
        if (err) *err = "write to '" + path + "' failed";
        return false;
    }
    if (path_out) *path_out = path;
    return true;
}

} // namespace gdda::metrics

#pragma once
// Live-metrics opt-in carried inside core::SimConfig (the third observability
// layer next to obs::TelemetryConfig and trace::TraceConfig). Kept
// dependency-free so the core config header does not pull the registry
// machinery into every TU. See docs/OBSERVABILITY.md for how the three
// layers relate.

#include <cstddef>
#include <string>

namespace gdda::metrics {

/// Thresholds of the simulation health watchdog (HealthMonitor). Streak
/// rules fire only after N consecutive offending steps so one-off hiccups
/// (a single hard solve, a transient latency spike) never page anyone;
/// physical-limit rules (interpenetration) fire immediately.
struct HealthConfig {
    int pcg_fail_warn_streak = 2;      ///< consecutive steps with a failed solve
    int pcg_fail_critical_streak = 5;
    int oc_cap_warn_streak = 3;        ///< consecutive open-close cap hits
    int oc_cap_critical_streak = 8;
    /// Relative total-energy growth per step that counts as anomalous
    /// (implicit DDA with frictional contacts must dissipate, never gain).
    double energy_growth_tol = 0.05;
    int energy_growth_warn_streak = 3;
    int energy_growth_critical_streak = 8;
    /// Interpenetration spike thresholds as a fraction of the model's
    /// half vertical extent w0 (immediate, no streak).
    double penetration_warn_ratio = 0.01;
    double penetration_critical_ratio = 0.05;
    /// Step-latency outlier: a step slower than factor x the running median
    /// of the last `latency_window` steps (once `min_latency_samples` have
    /// been seen) grades Warn.
    double latency_outlier_factor = 8.0;
    int latency_window = 32;
    int min_latency_samples = 8;
};

struct MetricsConfig {
    bool enabled = false;
    /// Run the per-engine health watchdog (rule evaluation over the live
    /// metrics; see HealthConfig).
    bool health = true;
    /// Include the energy-growth rule. Costs one O(n) read-only energy scan
    /// per step; off leaves every other rule active.
    bool energy = true;
    HealthConfig rules;
    /// Flight recorder depth: the last N step records retained for the
    /// post-mortem bundle.
    std::size_t flight_recorder_capacity = 32;
    /// When non-empty, a post-mortem bundle is written into this directory
    /// when health goes Critical (once per engine) and when a scheduled job
    /// ends Failed/DeadlineExceeded. Empty keeps the flight recorder purely
    /// in-memory.
    std::string postmortem_dir;
};

} // namespace gdda::metrics

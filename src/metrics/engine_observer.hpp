#pragma once
// The per-engine metrics observer: DdaEngine::step() hands it each finished
// obs::StepRecord (plus a read-only context) and it fans out to the live
// registry, the health watchdog, and the flight-recorder ring. Mirrors the
// obs::Recorder attachment idiom — the engine owns a shared_ptr and the
// scheduler can reach through to label/dump it.
//
// Observer-only contract: on_step reads the record and the context, writes
// atomics, and never touches simulation state. Bitwise trajectory identity
// with the observer attached vs absent is enforced by tests and
// bench_metrics_overhead.

#include <cstdint>
#include <memory>
#include <string>

#include "metrics/config.hpp"
#include "metrics/flight_recorder.hpp"
#include "metrics/health.hpp"
#include "obs/aggregator.hpp"
#include "obs/record.hpp"

namespace gdda::block {
class BlockSystem;
}

namespace gdda::metrics {

class Registry;
class Counter;
class Gauge;
class Histogram;

/// Read-only context the engine supplies next to each step record —
/// pipeline facts that are not part of the record schema.
struct StepContext {
    const block::BlockSystem* sys = nullptr; ///< for the dump-time fingerprint
    double length_scale = 1.0;               ///< w0 (penetration health ratio)
    int open_close_cap = 0;                  ///< SimConfig::max_open_close_iters
    int pair_cache_state = -1; ///< -1 cache off, 0 rebuilt (miss), 1 reused (hit)
    bool has_energy = false;   ///< energy_total valid (observer asked for it)
    double energy_total = 0.0; ///< total mechanical energy (J)
    /// Amdahl picture of the step: wall seconds of the whole step and the
    /// slice spent inside dispatch-eligible par:: regions (see
    /// par::parallel_region_seconds()). Coverage = parallel/step, clamped.
    double step_seconds = 0.0;
    double parallel_seconds = 0.0;
};

class EngineObserver {
public:
    /// `mode` labels every instrument ("serial" | "gpu"); `reg` defaults to
    /// Registry::global(). Instrument handles are resolved once here.
    EngineObserver(MetricsConfig cfg, std::string mode, Registry* reg = nullptr);

    /// nullptr when the config has metrics disabled (the engine then skips
    /// the observer entirely, like Recorder::from_config).
    static std::shared_ptr<EngineObserver> from_config(const MetricsConfig& cfg,
                                                       std::string mode);

    /// True when the engine should run the O(n) energy scan and fill
    /// StepContext::energy_total. Read-only measurement, but still work —
    /// only requested when the energy-growth rule is active.
    [[nodiscard]] bool wants_energy() const { return cfg_.health && cfg_.energy; }

    void on_step(const obs::StepRecord& rec, const StepContext& ctx);

    /// Identity stamped into bundles; the scheduler sets the job name on
    /// the worker thread before the first step.
    void set_job(std::string job) { job_ = std::move(job); }
    void set_device(std::string device) { device_ = std::move(device); }
    /// Engine-serialized SimConfig summary embedded in every bundle.
    void set_config_json(obs::JsonValue config) { config_json_ = std::move(config); }
    /// Most recent checkpoint of the observed job; the scheduler updates it
    /// after every snapshot write so post-mortem bundles name the exact
    /// resume point (docs/STATE.md).
    void set_checkpoint(std::string path, int step) {
        checkpoint_path_ = std::move(path);
        checkpoint_step_ = step;
    }
    [[nodiscard]] const std::string& checkpoint_path() const { return checkpoint_path_; }
    [[nodiscard]] int checkpoint_step() const { return checkpoint_step_; }

    [[nodiscard]] const MetricsConfig& config() const { return cfg_; }
    [[nodiscard]] const HealthMonitor& health() const { return health_; }
    [[nodiscard]] const FlightRecorder& flight_recorder() const { return flight_; }
    [[nodiscard]] const obs::Aggregator& ledger() const { return ledger_; }

    /// Write a post-mortem bundle into cfg.postmortem_dir (no-op returning
    /// false when the dir is empty). `fingerprint` 0 = state unavailable.
    bool dump_postmortem(const std::string& reason, const std::string& error,
                         std::uint64_t fingerprint, std::string* path_out = nullptr,
                         std::string* err = nullptr);

    [[nodiscard]] bool postmortem_written() const { return !postmortem_path_.empty(); }
    [[nodiscard]] const std::string& postmortem_path() const { return postmortem_path_; }

private:
    MetricsConfig cfg_;
    std::string mode_;
    std::string job_;
    std::string device_ = "k40";
    obs::JsonValue config_json_ = obs::JsonValue::object();
    Registry* reg_;
    HealthMonitor health_;
    FlightRecorder flight_;
    obs::Aggregator ledger_; ///< cumulative module/kernel totals for bundles
    bool critical_dumped_ = false;
    std::string postmortem_path_;
    std::string checkpoint_path_;
    int checkpoint_step_ = 0;

    // Cached instrument handles (resolved once in the constructor).
    Counter* steps_total_;
    Counter* unconverged_steps_total_;
    Counter* retries_total_;
    Counter* open_close_iters_total_;
    Counter* oc_cap_hits_total_;
    Counter* pcg_solves_ok_total_;
    Counter* pcg_solves_failed_total_;
    Counter* pcg_iterations_total_;
    Counter* pcg_refine_iterations_total_;
    Counter* pcg_fp32_iterations_total_;
    Counter* pcg_mixed_fallbacks_total_;
    Counter* pair_cache_hits_total_;
    Counter* pair_cache_misses_total_;
    Counter* kernel_launches_total_[obs::kModuleCount];
    Counter* health_events_warn_total_;
    Counter* health_events_critical_total_;
    Gauge* contacts_;
    Gauge* active_contacts_;
    Gauge* max_penetration_;
    Gauge* pcg_final_residual_;
    Gauge* energy_joules_;
    Gauge* health_grade_;
    Gauge* parallel_coverage_;
    Gauge* parallel_seconds_;
    Histogram* step_seconds_;
};

} // namespace gdda::metrics

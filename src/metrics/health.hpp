#pragma once
// Per-engine simulation health watchdog: grades every step Ok/Warn/Critical
// from rules over the live step telemetry. Pure observer — it only reads
// the sample the engine hands it and never feeds anything back into the
// pipeline, so grading cannot perturb the trajectory.

#include <string>
#include <string_view>
#include <vector>

#include "metrics/config.hpp"

namespace gdda::metrics {

enum class HealthGrade : int { Ok = 0, Warn = 1, Critical = 2 };
[[nodiscard]] std::string_view health_grade_name(HealthGrade g);

/// What the watchdog sees of one completed step. Everything here is already
/// computed by the engine (or cheap to read); the watchdog adds no
/// simulation work of its own.
struct HealthSample {
    int step = 0;
    double latency_s = 0.0;       ///< wall time of the step (sum of modules)
    int pcg_failed_solves = 0;    ///< non-converged PCG solves in this step
    bool step_converged = true;   ///< the step's overall convergence flag
    int open_close_iters = 0;
    int open_close_cap = 0;       ///< SimConfig::max_open_close_iters
    double max_penetration = 0.0; ///< worst residual interpenetration (m)
    double length_scale = 1.0;    ///< reference length (w0) for the ratio
    bool has_energy = false;
    double energy_total = 0.0;    ///< total mechanical energy (J)
};

/// One graded observation. `rule` names the worst rule that fired ("" for
/// Ok); `detail` is a human-readable explanation for the post-mortem.
struct HealthVerdict {
    int step = -1;
    HealthGrade grade = HealthGrade::Ok;
    std::string rule;
    std::string detail;
};

class HealthMonitor {
public:
    explicit HealthMonitor(HealthConfig cfg = {});

    /// Grade one step. Returns the overall verdict (worst rule wins) and
    /// records every non-Ok rule that fired into recent().
    HealthVerdict evaluate(const HealthSample& s);

    /// Grade of the most recent step (Ok before any sample).
    [[nodiscard]] HealthGrade grade() const { return grade_; }
    /// Worst grade seen over the monitor's lifetime.
    [[nodiscard]] HealthGrade worst() const { return worst_; }
    /// Bounded tail of non-Ok verdicts (oldest first, last 64 kept).
    [[nodiscard]] const std::vector<HealthVerdict>& recent() const { return recent_; }
    [[nodiscard]] const HealthConfig& config() const { return cfg_; }

private:
    void remember(HealthVerdict v);

    HealthConfig cfg_;
    HealthGrade grade_ = HealthGrade::Ok;
    HealthGrade worst_ = HealthGrade::Ok;
    std::vector<HealthVerdict> recent_;

    int pcg_fail_streak_ = 0;
    int oc_cap_streak_ = 0;
    int energy_growth_streak_ = 0;
    bool have_prev_energy_ = false;
    double prev_energy_ = 0.0;
    std::vector<double> latency_window_; ///< ring of recent step latencies
    std::size_t latency_next_ = 0;
    std::size_t latency_count_ = 0;
};

} // namespace gdda::metrics

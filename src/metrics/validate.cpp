#include "metrics/validate.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <vector>

#include "metrics/registry.hpp"
#include "obs/record.hpp"

namespace gdda::metrics {

namespace {

struct Sample {
    std::string name;
    std::string labels; ///< raw label block without braces
    double value = 0.0;
    bool is_inf = false;
};

bool parse_value(const std::string& text, double& out, bool& is_inf) {
    if (text == "+Inf" || text == "Inf") {
        out = std::numeric_limits<double>::infinity();
        is_inf = true;
        return true;
    }
    if (text == "NaN") {
        out = std::numeric_limits<double>::quiet_NaN();
        return true;
    }
    char* end = nullptr;
    out = std::strtod(text.c_str(), &end);
    return end && *end == '\0' && end != text.c_str();
}

/// Split `k="v",...` into pairs; returns false on malformed syntax.
bool parse_label_block(const std::string& block,
                       std::vector<std::pair<std::string, std::string>>& out) {
    std::size_t i = 0;
    while (i < block.size()) {
        std::size_t eq = block.find('=', i);
        if (eq == std::string::npos) return false;
        std::string key = block.substr(i, eq - i);
        if (key.empty()) return false;
        if (eq + 1 >= block.size() || block[eq + 1] != '"') return false;
        std::string val;
        std::size_t j = eq + 2;
        bool closed = false;
        while (j < block.size()) {
            char c = block[j];
            if (c == '\\' && j + 1 < block.size()) {
                val += block[j + 1];
                j += 2;
                continue;
            }
            if (c == '"') {
                closed = true;
                ++j;
                break;
            }
            val += c;
            ++j;
        }
        if (!closed) return false;
        out.emplace_back(std::move(key), std::move(val));
        if (j < block.size()) {
            if (block[j] != ',') return false;
            ++j;
        }
        i = j;
    }
    return true;
}

/// Parse one sample line `name{labels} value` / `name value`.
bool parse_sample(const std::string& line, Sample& s) {
    std::size_t i = 0;
    while (i < line.size() && (std::isalnum(static_cast<unsigned char>(line[i])) ||
                               line[i] == '_' || line[i] == ':'))
        ++i;
    if (i == 0) return false;
    s.name = line.substr(0, i);
    if (i < line.size() && line[i] == '{') {
        std::size_t close = line.rfind('}');
        if (close == std::string::npos || close < i) return false;
        s.labels = line.substr(i + 1, close - i - 1);
        std::vector<std::pair<std::string, std::string>> pairs;
        if (!parse_label_block(s.labels, pairs)) return false;
        i = close + 1;
    }
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    if (i >= line.size()) return false;
    // A timestamp suffix is allowed by the format but never produced here.
    const std::string value = line.substr(i);
    return parse_value(value, s.value, s.is_inf);
}

/// Strip `le="..."` out of a label block so bucket samples of one series
/// group together; returns the le value through `le`.
std::string labels_without_le(const std::string& block, std::string* le) {
    std::vector<std::pair<std::string, std::string>> pairs;
    if (!parse_label_block(block, pairs)) return block;
    std::string out;
    for (const auto& [k, v] : pairs) {
        if (k == "le") {
            if (le) *le = v;
            continue;
        }
        if (!out.empty()) out += ',';
        out += k + "=\"" + v + "\"";
    }
    return out;
}

struct HistSeries {
    std::vector<std::pair<double, double>> buckets; ///< (le, cumulative count)
    bool has_inf = false;
    double inf_count = 0.0;
    bool has_sum = false;
    bool has_count = false;
    double count = 0.0;
};

} // namespace

ExpositionValidation validate_exposition(std::istream& in) {
    ExpositionValidation res;
    std::map<std::string, std::string> family_kind; ///< name -> counter|gauge|histogram
    std::map<std::string, HistSeries> hist;         ///< "name|labels" -> series state
    std::string line;
    int lineno = 0;
    auto fail = [&](const std::string& msg) {
        res.error = "line " + std::to_string(lineno) + ": " + msg;
        return res;
    };
    while (std::getline(in, line)) {
        ++lineno;
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (line.empty()) continue;
        if (line[0] == '#') {
            std::istringstream hdr(line);
            std::string hash;
            std::string what;
            std::string name;
            hdr >> hash >> what >> name;
            if (what == "TYPE") {
                std::string kind;
                hdr >> kind;
                if (kind != "counter" && kind != "gauge" && kind != "histogram")
                    return fail("unknown metric type '" + kind + "'");
                if (family_kind.count(name))
                    return fail("duplicate # TYPE for '" + name + "'");
                family_kind[name] = kind;
                ++res.families;
            } else if (what != "HELP") {
                return fail("unknown comment directive '" + what + "'");
            }
            continue;
        }
        Sample s;
        if (!parse_sample(line, s)) return fail("malformed sample line");
        ++res.samples;
        // Resolve the owning family: exact name, else histogram suffix.
        std::string base = s.name;
        std::string suffix;
        if (!family_kind.count(base)) {
            for (const char* suf : {"_bucket", "_sum", "_count"}) {
                const std::string sufs = suf;
                if (base.size() > sufs.size() &&
                    base.compare(base.size() - sufs.size(), sufs.size(), sufs) == 0) {
                    const std::string cand = base.substr(0, base.size() - sufs.size());
                    if (family_kind.count(cand) && family_kind[cand] == "histogram") {
                        base = cand;
                        suffix = sufs;
                        break;
                    }
                }
            }
        }
        if (!family_kind.count(base))
            return fail("sample '" + s.name + "' has no # TYPE declaration");
        const std::string& kind = family_kind[base];
        if (kind == "histogram" && suffix.empty())
            return fail("histogram '" + base + "' sampled without _bucket/_sum/_count");
        if (kind != "histogram" && !suffix.empty())
            return fail("suffix sample on non-histogram family '" + base + "'");
        if (kind == "counter") {
            if (s.value < 0.0 || s.value != std::floor(s.value))
                return fail("counter '" + s.name + "' must be a non-negative integer");
        }
        // Semantic range checks for known ratio gauges: coverage is a
        // fraction of the step and the exporter clamps it, so any value
        // outside [0, 1] means the instrumentation itself broke.
        if (kind == "gauge" && s.name == "gdda_engine_parallel_coverage") {
            if (!(s.value >= 0.0 && s.value <= 1.0))
                return fail("gauge '" + s.name + "' must lie in [0, 1]");
        }
        if (kind == "histogram") {
            std::string le;
            const std::string key = base + "|" + labels_without_le(s.labels, &le);
            HistSeries& h = hist[key];
            if (suffix == "_bucket") {
                if (le.empty()) return fail("_bucket sample without le label");
                if (le == "+Inf") {
                    h.has_inf = true;
                    h.inf_count = s.value;
                } else {
                    double edge = 0.0;
                    bool inf = false;
                    if (!parse_value(le, edge, inf)) return fail("unparseable le '" + le + "'");
                    if (!h.buckets.empty() &&
                        (edge <= h.buckets.back().first || s.value < h.buckets.back().second))
                        return fail("histogram buckets of '" + base +
                                    "' not cumulative/increasing");
                    if (h.has_inf) return fail("bucket after le=\"+Inf\" in '" + base + "'");
                    h.buckets.emplace_back(edge, s.value);
                }
            } else if (suffix == "_sum") {
                h.has_sum = true;
            } else if (suffix == "_count") {
                h.has_count = true;
                h.count = s.value;
            }
        }
    }
    lineno = 0; // post-stream checks are not tied to a line
    for (const auto& [key, h] : hist) {
        const std::string name = key.substr(0, key.find('|'));
        if (!h.has_inf) {
            res.error = "histogram series '" + name + "' missing le=\"+Inf\" bucket";
            return res;
        }
        if (!h.has_sum || !h.has_count) {
            res.error = "histogram series '" + name + "' missing _sum/_count";
            return res;
        }
        if (!h.buckets.empty() && h.inf_count < h.buckets.back().second) {
            res.error = "histogram series '" + name + "' +Inf bucket below prior bucket";
            return res;
        }
        if (h.inf_count != h.count) {
            res.error = "histogram series '" + name + "' _count disagrees with +Inf bucket";
            return res;
        }
    }
    if (res.families == 0) {
        res.error = "no metric families found";
        return res;
    }
    res.ok = true;
    return res;
}

ExpositionValidation validate_exposition_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
        ExpositionValidation res;
        res.error = "cannot open '" + path + "'";
        return res;
    }
    return validate_exposition(in);
}

PostmortemValidation validate_postmortem(const obs::JsonValue& doc) {
    PostmortemValidation res;
    auto fail = [&](std::string msg) {
        res.error = std::move(msg);
        return res;
    };
    if (!doc.is_object()) return fail("bundle is not a JSON object");
    const obs::JsonValue* schema = doc.find("schema");
    if (!schema || !schema->is_string() || schema->as_string() != kPostmortemSchemaName)
        return fail("schema is not '" + std::string(kPostmortemSchemaName) + "'");
    const obs::JsonValue* version = doc.find("version");
    if (!version || !version->is_count() ||
        static_cast<int>(version->as_number()) != kMetricsSchemaVersion)
        return fail("unsupported bundle version");
    for (const char* key : {"job", "mode", "reason", "state_fingerprint"}) {
        const obs::JsonValue* v = doc.find(key);
        if (!v || !v->is_string()) return fail(std::string("missing string field '") + key + "'");
    }
    const std::string& fp = doc.find("state_fingerprint")->as_string();
    if (fp.size() != 16 || fp.find_first_not_of("0123456789abcdef") != std::string::npos)
        return fail("state_fingerprint is not 16 lowercase hex digits");
    const obs::JsonValue* meta = doc.find("meta");
    if (!meta || !meta->is_object() || !meta->find("git_sha"))
        return fail("missing meta.git_sha");
    const obs::JsonValue* config = doc.find("config");
    if (!config || !config->is_object()) return fail("missing config object");
    const obs::JsonValue* records = doc.find("records");
    if (!records || !records->is_array()) return fail("missing records array");
    for (const obs::JsonValue& rj : records->items()) {
        obs::StepRecord rec;
        std::string err;
        if (!obs::from_json(rj, rec, &err))
            return fail("record " + std::to_string(res.records) + ": " + err);
        ++res.records;
    }
    // Optional recovery pointer (present iff the job was checkpointed):
    // must name a non-empty path and a non-negative step when it appears.
    if (const obs::JsonValue* ckpt = doc.find("checkpoint")) {
        if (!ckpt->is_object()) return fail("checkpoint is not an object");
        const obs::JsonValue* cpath = ckpt->find("path");
        if (!cpath || !cpath->is_string() || cpath->as_string().empty())
            return fail("checkpoint.path must be a non-empty string");
        const obs::JsonValue* cstep = ckpt->find("step");
        if (!cstep || !cstep->is_count())
            return fail("checkpoint.step must be a non-negative integer");
    }
    const obs::JsonValue* health = doc.find("health");
    if (!health || !health->is_object()) return fail("missing health object");
    auto valid_grade = [](const obs::JsonValue* g) {
        return g && g->is_string() &&
               (g->as_string() == "ok" || g->as_string() == "warn" ||
                g->as_string() == "critical");
    };
    if (!valid_grade(health->find("grade")) || !valid_grade(health->find("worst")))
        return fail("health grade/worst must be ok|warn|critical");
    const obs::JsonValue* verdicts = health->find("verdicts");
    if (!verdicts || !verdicts->is_array()) return fail("missing health.verdicts array");
    for (const obs::JsonValue& vj : verdicts->items()) {
        if (!vj.is_object() || !valid_grade(vj.find("grade")) || !vj.find("rule") ||
            !vj.find("step"))
            return fail("malformed health verdict " + std::to_string(res.verdicts));
        ++res.verdicts;
    }
    res.ok = true;
    return res;
}

PostmortemValidation validate_postmortem_file(const std::string& path) {
    PostmortemValidation res;
    std::ifstream in(path);
    if (!in) {
        res.error = "cannot open '" + path + "'";
        return res;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    obs::JsonValue doc;
    std::string err;
    if (!obs::JsonValue::parse(buf.str(), doc, &err)) {
        res.error = "JSON parse: " + err;
        return res;
    }
    return validate_postmortem(doc);
}

} // namespace gdda::metrics

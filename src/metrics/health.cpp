#include "metrics/health.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace gdda::metrics {

namespace {

constexpr std::size_t kRecentVerdictCap = 64;

std::string fmt(const char* pattern, double a, double b) {
    char buf[160];
    std::snprintf(buf, sizeof buf, pattern, a, b);
    return buf;
}

} // namespace

std::string_view health_grade_name(HealthGrade g) {
    switch (g) {
    case HealthGrade::Ok: return "ok";
    case HealthGrade::Warn: return "warn";
    case HealthGrade::Critical: return "critical";
    }
    return "ok";
}

HealthMonitor::HealthMonitor(HealthConfig cfg) : cfg_(cfg) {
    latency_window_.assign(static_cast<std::size_t>(std::max(cfg_.latency_window, 1)), 0.0);
}

void HealthMonitor::remember(HealthVerdict v) {
    if (recent_.size() >= kRecentVerdictCap)
        recent_.erase(recent_.begin());
    recent_.push_back(std::move(v));
}

HealthVerdict HealthMonitor::evaluate(const HealthSample& s) {
    HealthVerdict overall;
    overall.step = s.step;

    auto fire = [&](HealthGrade grade, std::string rule, std::string detail) {
        HealthVerdict v;
        v.step = s.step;
        v.grade = grade;
        v.rule = std::move(rule);
        v.detail = std::move(detail);
        if (static_cast<int>(grade) > static_cast<int>(overall.grade)) {
            overall.grade = grade;
            overall.rule = v.rule;
            overall.detail = v.detail;
        }
        remember(std::move(v));
    };

    // Rule 1: PCG non-convergence streak. A single hard solve is routine
    // (the retry path shrinks dt); a run of them means the system left the
    // solver's comfort zone.
    if (s.pcg_failed_solves > 0 || !s.step_converged)
        ++pcg_fail_streak_;
    else
        pcg_fail_streak_ = 0;
    if (pcg_fail_streak_ >= cfg_.pcg_fail_critical_streak)
        fire(HealthGrade::Critical, "pcg_nonconverged_streak",
             fmt("%.0f consecutive steps with failed solves (critical at %.0f)",
                 pcg_fail_streak_, cfg_.pcg_fail_critical_streak));
    else if (pcg_fail_streak_ >= cfg_.pcg_fail_warn_streak)
        fire(HealthGrade::Warn, "pcg_nonconverged_streak",
             fmt("%.0f consecutive steps with failed solves (warn at %.0f)", pcg_fail_streak_,
                 cfg_.pcg_fail_warn_streak));

    // Rule 2: open-close iteration cap hits. The inner loop giving up on a
    // consistent contact-state set step after step means the penalty/contact
    // configuration is oscillating.
    if (s.open_close_cap > 0 && s.open_close_iters >= s.open_close_cap)
        ++oc_cap_streak_;
    else
        oc_cap_streak_ = 0;
    if (oc_cap_streak_ >= cfg_.oc_cap_critical_streak)
        fire(HealthGrade::Critical, "open_close_cap_streak",
             fmt("open-close cap hit %.0f steps in a row (critical at %.0f)", oc_cap_streak_,
                 cfg_.oc_cap_critical_streak));
    else if (oc_cap_streak_ >= cfg_.oc_cap_warn_streak)
        fire(HealthGrade::Warn, "open_close_cap_streak",
             fmt("open-close cap hit %.0f steps in a row (warn at %.0f)", oc_cap_streak_,
                 cfg_.oc_cap_warn_streak));

    // Rule 3: energy growth. Implicit DDA with frictional contact dissipates;
    // sustained relative growth of total mechanical energy means the
    // integration is feeding the system (penalty blow-up, dt too large).
    if (s.has_energy) {
        if (have_prev_energy_) {
            const double scale =
                std::max({std::fabs(prev_energy_), std::fabs(s.energy_total), 1e-12});
            const double rel = (s.energy_total - prev_energy_) / scale;
            if (rel > cfg_.energy_growth_tol)
                ++energy_growth_streak_;
            else
                energy_growth_streak_ = 0;
            if (energy_growth_streak_ >= cfg_.energy_growth_critical_streak)
                fire(HealthGrade::Critical, "energy_growth",
                     fmt("energy grew >%.2f%% for %.0f consecutive steps",
                         100.0 * cfg_.energy_growth_tol, energy_growth_streak_));
            else if (energy_growth_streak_ >= cfg_.energy_growth_warn_streak)
                fire(HealthGrade::Warn, "energy_growth",
                     fmt("energy grew >%.2f%% for %.0f consecutive steps",
                         100.0 * cfg_.energy_growth_tol, energy_growth_streak_));
        }
        prev_energy_ = s.energy_total;
        have_prev_energy_ = true;
    }

    // Rule 4: interpenetration spike, immediate. Residual penetration beyond
    // a few percent of the reference length is a physically meaningless
    // state no streak should be allowed to ride through.
    const double len = std::max(s.length_scale, 1e-12);
    const double pen_ratio = s.max_penetration / len;
    if (pen_ratio >= cfg_.penetration_critical_ratio)
        fire(HealthGrade::Critical, "interpenetration_spike",
             fmt("max penetration %.3g x reference length (critical at %.3g)", pen_ratio,
                 cfg_.penetration_critical_ratio));
    else if (pen_ratio >= cfg_.penetration_warn_ratio)
        fire(HealthGrade::Warn, "interpenetration_spike",
             fmt("max penetration %.3g x reference length (warn at %.3g)", pen_ratio,
                 cfg_.penetration_warn_ratio));

    // Rule 5: step-latency outlier vs the running median of the recent
    // window. Wall time is noisy on shared hosts, so this is Warn-only and
    // needs a minimum sample count before it can fire.
    if (latency_count_ >= static_cast<std::size_t>(std::max(cfg_.min_latency_samples, 1))) {
        std::vector<double> sorted(latency_window_.begin(),
                                   latency_window_.begin() +
                                       static_cast<std::ptrdiff_t>(std::min(
                                           latency_count_, latency_window_.size())));
        std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2, sorted.end());
        const double median = sorted[sorted.size() / 2];
        if (median > 0.0 && s.latency_s > cfg_.latency_outlier_factor * median)
            fire(HealthGrade::Warn, "step_latency_outlier",
                 fmt("step took %.3gx the running median latency", s.latency_s / median, 0.0));
    }
    latency_window_[latency_next_] = s.latency_s;
    latency_next_ = (latency_next_ + 1) % latency_window_.size();
    ++latency_count_;

    grade_ = overall.grade;
    if (static_cast<int>(grade_) > static_cast<int>(worst_)) worst_ = grade_;
    return overall;
}

} // namespace gdda::metrics

#pragma once
// Validators for the two metrics artifacts: the Prometheus text exposition
// (structural checks: declared TYPEs, parseable samples, consistent
// histogram series) and the post-mortem bundle (schema/version, decodable
// embedded step records, health section). Backs `obs_validate --metrics`
// and `obs_validate --postmortem`, the CI smoke gates.

#include <iosfwd>
#include <string>

#include "obs/json.hpp"

namespace gdda::metrics {

struct ExpositionValidation {
    bool ok = false;
    int families = 0; ///< # TYPE declarations seen
    int samples = 0;  ///< sample lines seen
    std::string error;
    explicit operator bool() const { return ok; }
};

/// Validate Prometheus text exposition. Checks: every sample belongs to a
/// declared family (histogram _bucket/_sum/_count map to their base name),
/// values parse, counter values are non-negative integers, label blocks are
/// well-formed, and each histogram series has cumulative non-decreasing
/// buckets ending in le="+Inf" whose count equals its _count sample.
ExpositionValidation validate_exposition(std::istream& in);
ExpositionValidation validate_exposition_file(const std::string& path);

struct PostmortemValidation {
    bool ok = false;
    int records = 0;  ///< embedded step records (all decoded)
    int verdicts = 0; ///< health verdicts listed
    std::string error;
    explicit operator bool() const { return ok; }
};

/// Validate a parsed post-mortem bundle (schema gdda.metrics.postmortem v1).
PostmortemValidation validate_postmortem(const obs::JsonValue& doc);
PostmortemValidation validate_postmortem_file(const std::string& path);

} // namespace gdda::metrics

#pragma once
// Simple-polygon utilities: area, centroid, inertia moments (via Green's
// theorem), point containment, vertex-edge distance queries. DDA blocks are
// simple (possibly non-convex) polygons with CCW vertex order.

#include <span>
#include <vector>

#include "geometry/aabb.hpp"
#include "geometry/vec2.hpp"

namespace gdda::geom {

/// Area-weighted integrals of 1, x, y, x^2, y^2, xy over a polygon.
/// Used by DDA for mass/inertia matrices: M = rho * integral(T^T T) dS,
/// whose entries are combinations of these moments.
struct PolygonMoments {
    double s = 0.0;   ///< integral dS  (area)
    double sx = 0.0;  ///< integral x dS
    double sy = 0.0;  ///< integral y dS
    double sxx = 0.0; ///< integral x^2 dS
    double syy = 0.0; ///< integral y^2 dS
    double sxy = 0.0; ///< integral x*y dS

    /// Same moments about a new origin c (i.e. substitute x -> x - c.x).
    [[nodiscard]] PolygonMoments about(Vec2 c) const;
};

/// Signed area (positive for CCW vertex order).
double signed_area(std::span<const Vec2> poly);

/// Area centroid. Requires non-degenerate polygon.
Vec2 centroid(std::span<const Vec2> poly);

/// All six moments about the origin, exact for simple polygons.
PolygonMoments moments(std::span<const Vec2> poly);

/// Even-odd point-in-polygon test (boundary points count as inside).
bool contains(std::span<const Vec2> poly, Vec2 p, double tol = 1e-12);

/// Closest point on segment [a,b] to p, returned as the parameter t in [0,1].
double closest_param_on_segment(Vec2 a, Vec2 b, Vec2 p);

/// Distance from p to segment [a,b].
double point_segment_distance(Vec2 a, Vec2 b, Vec2 p);

/// True if segments [a,b] and [c,d] properly intersect or touch.
bool segments_intersect(Vec2 a, Vec2 b, Vec2 c, Vec2 d);

/// Area of the intersection of two convex polygons (Sutherland-Hodgman
/// clipping). Used by interpenetration checking to quantify overlap.
double convex_overlap_area(std::span<const Vec2> a, std::span<const Vec2> b);

/// Ensure CCW orientation in place.
void make_ccw(std::vector<Vec2>& poly);

} // namespace gdda::geom

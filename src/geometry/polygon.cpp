#include "geometry/polygon.hpp"

#include <algorithm>
#include <cmath>

namespace gdda::geom {

PolygonMoments PolygonMoments::about(Vec2 c) const {
    PolygonMoments m;
    m.s = s;
    m.sx = sx - c.x * s;
    m.sy = sy - c.y * s;
    m.sxx = sxx - 2.0 * c.x * sx + c.x * c.x * s;
    m.syy = syy - 2.0 * c.y * sy + c.y * c.y * s;
    m.sxy = sxy - c.x * sy - c.y * sx + c.x * c.y * s;
    return m;
}

double signed_area(std::span<const Vec2> poly) {
    double a = 0.0;
    const std::size_t n = poly.size();
    for (std::size_t i = 0; i < n; ++i) {
        const Vec2 p = poly[i];
        const Vec2 q = poly[(i + 1) % n];
        a += p.cross(q);
    }
    return 0.5 * a;
}

Vec2 centroid(std::span<const Vec2> poly) {
    const std::size_t n = poly.size();
    double a = 0.0;
    Vec2 c;
    for (std::size_t i = 0; i < n; ++i) {
        const Vec2 p = poly[i];
        const Vec2 q = poly[(i + 1) % n];
        const double w = p.cross(q);
        a += w;
        c += (p + q) * w;
    }
    return c / (3.0 * a);
}

PolygonMoments moments(std::span<const Vec2> poly) {
    // Green's theorem reduction of each area integral to an edge sum.
    PolygonMoments m;
    const std::size_t n = poly.size();
    for (std::size_t i = 0; i < n; ++i) {
        const Vec2 p = poly[i];
        const Vec2 q = poly[(i + 1) % n];
        const double w = p.cross(q); // x_i*y_{i+1} - x_{i+1}*y_i
        m.s += w;
        m.sx += w * (p.x + q.x);
        m.sy += w * (p.y + q.y);
        m.sxx += w * (p.x * p.x + p.x * q.x + q.x * q.x);
        m.syy += w * (p.y * p.y + p.y * q.y + q.y * q.y);
        m.sxy += w * (p.x * (2.0 * p.y + q.y) + q.x * (p.y + 2.0 * q.y));
    }
    m.s *= 0.5;
    m.sx /= 6.0;
    m.sy /= 6.0;
    m.sxx /= 12.0;
    m.syy /= 12.0;
    m.sxy /= 24.0;
    return m;
}

bool contains(std::span<const Vec2> poly, Vec2 p, double tol) {
    const std::size_t n = poly.size();
    // Boundary check first so edge/vertex hits are deterministic.
    for (std::size_t i = 0; i < n; ++i) {
        if (point_segment_distance(poly[i], poly[(i + 1) % n], p) <= tol) return true;
    }
    bool inside = false;
    for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
        const Vec2 a = poly[j];
        const Vec2 b = poly[i];
        if ((b.y > p.y) != (a.y > p.y)) {
            const double xint = b.x + (p.y - b.y) * (a.x - b.x) / (a.y - b.y);
            if (p.x < xint) inside = !inside;
        }
    }
    return inside;
}

double closest_param_on_segment(Vec2 a, Vec2 b, Vec2 p) {
    const Vec2 d = b - a;
    const double len2 = d.norm2();
    if (len2 == 0.0) return 0.0;
    return std::clamp((p - a).dot(d) / len2, 0.0, 1.0);
}

double point_segment_distance(Vec2 a, Vec2 b, Vec2 p) {
    const double t = closest_param_on_segment(a, b, p);
    return distance(p, a + (b - a) * t);
}

bool segments_intersect(Vec2 a, Vec2 b, Vec2 c, Vec2 d) {
    const double d1 = orient2d(c, d, a);
    const double d2 = orient2d(c, d, b);
    const double d3 = orient2d(a, b, c);
    const double d4 = orient2d(a, b, d);
    if (((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
        ((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)))
        return true;
    auto on = [](Vec2 p, Vec2 q, Vec2 r) {
        return std::min(p.x, q.x) <= r.x && r.x <= std::max(p.x, q.x) &&
               std::min(p.y, q.y) <= r.y && r.y <= std::max(p.y, q.y);
    };
    if (d1 == 0 && on(c, d, a)) return true;
    if (d2 == 0 && on(c, d, b)) return true;
    if (d3 == 0 && on(a, b, c)) return true;
    if (d4 == 0 && on(a, b, d)) return true;
    return false;
}

namespace {
// Clip subject polygon against the half-plane left of edge (a, b).
std::vector<Vec2> clip_halfplane(const std::vector<Vec2>& subject, Vec2 a, Vec2 b) {
    std::vector<Vec2> out;
    const std::size_t n = subject.size();
    out.reserve(n + 2);
    for (std::size_t i = 0; i < n; ++i) {
        const Vec2 cur = subject[i];
        const Vec2 nxt = subject[(i + 1) % n];
        const double dc = orient2d(a, b, cur);
        const double dn = orient2d(a, b, nxt);
        if (dc >= 0.0) out.push_back(cur);
        if ((dc > 0.0 && dn < 0.0) || (dc < 0.0 && dn > 0.0)) {
            const double t = dc / (dc - dn);
            out.push_back(cur + (nxt - cur) * t);
        }
    }
    return out;
}
} // namespace

double convex_overlap_area(std::span<const Vec2> a, std::span<const Vec2> b) {
    std::vector<Vec2> clipped(a.begin(), a.end());
    const std::size_t n = b.size();
    for (std::size_t i = 0; i < n && !clipped.empty(); ++i) {
        clipped = clip_halfplane(clipped, b[i], b[(i + 1) % n]);
    }
    if (clipped.size() < 3) return 0.0;
    return std::abs(signed_area(clipped));
}

void make_ccw(std::vector<Vec2>& poly) {
    if (signed_area(poly) < 0.0) std::reverse(poly.begin(), poly.end());
}

} // namespace gdda::geom

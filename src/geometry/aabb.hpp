#pragma once
// Axis-aligned bounding boxes for the broad phase of contact detection.

#include <algorithm>
#include <limits>
#include <span>

#include "geometry/vec2.hpp"

namespace gdda::geom {

struct Aabb {
    Vec2 lo{std::numeric_limits<double>::max(), std::numeric_limits<double>::max()};
    Vec2 hi{std::numeric_limits<double>::lowest(), std::numeric_limits<double>::lowest()};

    void expand(Vec2 p) {
        lo.x = std::min(lo.x, p.x);
        lo.y = std::min(lo.y, p.y);
        hi.x = std::max(hi.x, p.x);
        hi.y = std::max(hi.y, p.y);
    }

    /// Grow the box by `margin` on every side (contact search distance).
    [[nodiscard]] Aabb inflated(double margin) const {
        Aabb b = *this;
        b.lo -= Vec2{margin, margin};
        b.hi += Vec2{margin, margin};
        return b;
    }

    [[nodiscard]] bool overlaps(const Aabb& o) const {
        return lo.x <= o.hi.x && o.lo.x <= hi.x && lo.y <= o.hi.y && o.lo.y <= hi.y;
    }

    [[nodiscard]] bool contains(Vec2 p) const {
        return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
    }

    [[nodiscard]] Vec2 center() const { return (lo + hi) * 0.5; }
    [[nodiscard]] Vec2 extent() const { return hi - lo; }
    [[nodiscard]] bool valid() const { return lo.x <= hi.x && lo.y <= hi.y; }
};

inline Aabb bounds_of(std::span<const Vec2> pts) {
    Aabb b;
    for (Vec2 p : pts) b.expand(p);
    return b;
}

} // namespace gdda::geom

#pragma once
// 2-D vector arithmetic used throughout the DDA geometry kernels.

#include <cmath>

namespace gdda::geom {

struct Vec2 {
    double x = 0.0;
    double y = 0.0;

    constexpr Vec2() = default;
    constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}

    constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
    constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
    constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
    constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
    constexpr Vec2 operator-() const { return {-x, -y}; }
    Vec2& operator+=(Vec2 o) { x += o.x; y += o.y; return *this; }
    Vec2& operator-=(Vec2 o) { x -= o.x; y -= o.y; return *this; }
    Vec2& operator*=(double s) { x *= s; y *= s; return *this; }

    constexpr bool operator==(const Vec2&) const = default;

    [[nodiscard]] constexpr double dot(Vec2 o) const { return x * o.x + y * o.y; }
    /// z-component of the 3-D cross product; >0 when o is CCW of *this.
    [[nodiscard]] constexpr double cross(Vec2 o) const { return x * o.y - y * o.x; }
    [[nodiscard]] double norm() const { return std::sqrt(x * x + y * y); }
    [[nodiscard]] constexpr double norm2() const { return x * x + y * y; }
    /// 90-degree CCW rotation (left normal of a direction vector).
    [[nodiscard]] constexpr Vec2 perp() const { return {-y, x}; }
    [[nodiscard]] Vec2 normalized() const {
        const double n = norm();
        return n > 0.0 ? Vec2{x / n, y / n} : Vec2{};
    }
};

constexpr Vec2 operator*(double s, Vec2 v) { return v * s; }

inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }
inline double distance2(Vec2 a, Vec2 b) { return (a - b).norm2(); }

/// Twice the signed area of triangle (a, b, c); >0 for CCW ordering.
/// This is the determinant |1 ax ay; 1 bx by; 1 cx cy| used by Shi's
/// contact penetration formula.
constexpr double orient2d(Vec2 a, Vec2 b, Vec2 c) {
    return (b.x - a.x) * (c.y - a.y) - (c.x - a.x) * (b.y - a.y);
}

} // namespace gdda::geom

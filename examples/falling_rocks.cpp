// Case-2 style example: dynamic motion of falling rocks on a slope (paper
// Fig. 13). Runs the GPU pipeline end to end and emits snapshots of the
// motion process at regular intervals.
//
// Usage: falling_rocks [target_rocks] [steps] [snapshot_every]

#include <cstdio>
#include <cstdlib>

#include "core/simulation.hpp"
#include "io/snapshot.hpp"
#include "models/falling_rocks.hpp"

using namespace gdda;

int main(int argc, char** argv) {
    const int target_rocks = argc > 1 ? std::atoi(argv[1]) : 80;
    const int steps = argc > 2 ? std::atoi(argv[2]) : 600;
    const int every = argc > 3 ? std::atoi(argv[3]) : 150;

    models::FallingRocksParams p;
    p.slope_height = 120.0;
    p.floor_length = 150.0;
    block::BlockSystem sys = models::make_falling_rocks_with_blocks(target_rocks, p);
    std::printf("falling-rocks model: %zu blocks total\n", sys.size());

    core::SimConfig cfg;
    cfg.dt = 2e-3;
    cfg.dt_max = 4e-3;
    cfg.velocity_carry = 1.0; // fully dynamic
    cfg.precond = core::PrecondKind::BlockJacobi;

    core::DdaSimulation sim(std::move(sys), cfg, core::EngineMode::Gpu);
    io::append_snapshot_csv("rocks_motion.csv", sim.system(), 0, /*truncate=*/true);
    io::write_snapshot_svg("rocks_t0.svg", sim.system());

    for (int s = 1; s <= steps; ++s) {
        const core::StepStats st = sim.step();
        if (s % every == 0) {
            io::append_snapshot_csv("rocks_motion.csv", sim.system(), s);
            char name[64];
            std::snprintf(name, sizeof name, "rocks_t%d.svg", s);
            io::write_snapshot_svg(name, sim.system());
            std::printf("step %4d: dt=%.2e contacts=%zu active=%zu maxdisp=%.3e\n", s,
                        st.dt_used, st.contacts, st.active_contacts, st.max_displacement);
        }
    }

    // Mean rock descent as the headline physical outcome.
    double mean_y = 0.0;
    std::size_t rocks = 0;
    for (const block::Block& b : sim.system().blocks)
        if (!b.fixed) {
            mean_y += b.centroid.y;
            ++rocks;
        }
    std::printf("mean rock height after %.3f s: %.2f m (%zu rocks)\n",
                sim.engine().time(), mean_y / rocks, rocks);

    // GPU pipeline modeled time across both device profiles.
    const auto& led = sim.engine().ledgers();
    std::printf("\nmodeled GPU time per module (ms):\n");
    std::printf("  %-30s %10s %10s\n", "module", "K20", "K40");
    for (int m = 0; m < core::kModuleCount; ++m) {
        std::printf("  %-30s %10.2f %10.2f\n",
                    std::string(core::kModuleNames[m]).c_str(),
                    led.modeled_ms(static_cast<core::Module>(m), simt::tesla_k20()),
                    led.modeled_ms(static_cast<core::Module>(m), simt::tesla_k40()));
    }
    std::printf("wrote rocks_motion.csv and rocks_t*.svg\n");
    return 0;
}

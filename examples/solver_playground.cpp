// Solver playground: assemble one real DDA step system from a slope model,
// then compare preconditioners and SpMV kernels on it interactively. A
// compact tour of the numerical layer of the library.
//
// Usage: solver_playground [target_blocks]

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "assembly/assembler.hpp"
#include "contact/broad_phase.hpp"
#include "contact/narrow_phase.hpp"
#include "core/gpu_support.hpp"
#include "models/slope.hpp"
#include "solver/ilu0.hpp"
#include "solver/pcg.hpp"

using namespace gdda;
using Clock = std::chrono::steady_clock;

int main(int argc, char** argv) {
    const int target_blocks = argc > 1 ? std::atoi(argv[1]) : 400;

    // Build one step's stiffness system: detect contacts, close them, and
    // assemble with gravity loading.
    block::BlockSystem sys = models::make_slope_with_blocks(target_blocks);
    const double rho = 0.02 * sys.characteristic_length();
    const auto pairs = contact::broad_phase_triangular(sys, rho);
    auto np = contact::narrow_phase(sys, pairs, rho);
    for (auto& c : np.contacts) c.state = contact::ContactState::Lock;
    const auto geo = contact::init_all_contacts(sys, np.contacts);

    assembly::StepParams sp;
    sp.dt = 1e-3;
    sp.contact.penalty = 10.0 * sys.max_young();
    sp.contact.shear_penalty = sp.contact.penalty;
    sp.fixed_penalty = sp.contact.penalty;
    const auto att = assembly::index_attachments(sys);
    const auto as = assembly::assemble_serial(sys, att, np.contacts, geo, sp);

    std::printf("system: %d block rows (%zu scalar), %d non-diagonal blocks\n", as.k.n,
                as.k.scalar_dim(), as.k.nnz_blocks_upper());

    const sparse::HsbcsrMatrix h = sparse::hsbcsr_from_bsr(as.k);

    std::printf("\n%-12s %10s %12s %12s %10s\n", "precond", "iters", "build(ms)",
                "solve(ms)", "conv");
    for (auto kind : {core::PrecondKind::Jacobi, core::PrecondKind::BlockJacobi,
                      core::PrecondKind::SsorAi, core::PrecondKind::Ilu0}) {
        const auto t0 = Clock::now();
        const auto pre = core::make_preconditioner(kind, as.k);
        const double build_ms =
            std::chrono::duration<double, std::milli>(Clock::now() - t0).count();

        sparse::BlockVec x(as.k.n);
        const auto t1 = Clock::now();
        const auto r = solver::pcg(h, as.f, x, *pre, {.max_iters = 5000, .rel_tol = 1e-10});
        const double solve_ms =
            std::chrono::duration<double, std::milli>(Clock::now() - t1).count();
        std::printf("%-12s %10d %12.3f %12.3f %10s\n", pre->name().c_str(), r.iterations,
                    build_ms, solve_ms, r.converged ? "yes" : "NO");
    }

    // ILU level structure: why TSS is slow on the GPU.
    const solver::Ilu0 ilu(as.k);
    std::printf("\nILU(0): %d lower levels, %d upper levels over %zu rows\n",
                ilu.lower_levels(), ilu.upper_levels(), ilu.dim());
    std::printf("  -> a level-scheduled GPU solve serializes ~%d dependent launches\n",
                ilu.lower_levels() + ilu.upper_levels());
    return 0;
}

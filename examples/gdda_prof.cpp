// gdda-prof — nvprof-style profiler report for the DDA GPU pipeline. Runs a
// model with span tracing + kernel capture enabled (or loads a previously
// exported Chrome trace) and prints:
//
//   * a kernel-launch table sorted by total modeled device time (calls,
//     total/avg time, % of total, divergence %, coalescing %, module), and
//   * a top-down loop-tree view of the span hierarchy (time step ->
//     displacement pass -> open-close iteration -> module -> solve -> PCG
//     iteration) with call counts and inclusive wall time, and
//   * an agreement check of the per-module trace totals against the
//     engine's own CostLedger accounting.
//
// Usage:
//   gdda-prof [model] [--steps N] [--engine serial|gpu] [--device k20|k40]
//             [--static|--dynamic] [--top N] [--depth N]
//             [--trace out.trace.json] [--from in.trace.json]
//
//   model   slope:N | rocks:N | tunnel | column:N   (default slope:300)
//   --from  skip the run and report on an existing exported trace instead.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "core/simulation.hpp"
#include "models/falling_rocks.hpp"
#include "models/slope.hpp"
#include "models/stacks.hpp"
#include "models/tunnel.hpp"
#include "trace/chrome_export.hpp"
#include "trace/profile.hpp"
#include "trace/validate.hpp"

using namespace gdda;

namespace {

block::BlockSystem make_model(const std::string& spec) {
    const auto colon = spec.find(':');
    const std::string kind = spec.substr(0, colon);
    const int n = colon == std::string::npos ? 0 : std::atoi(spec.c_str() + colon + 1);
    if (kind == "rocks") return models::make_falling_rocks_with_blocks(n > 0 ? n : 100);
    if (kind == "tunnel") return models::make_tunnel();
    if (kind == "column") return models::make_column(n > 0 ? n : 5);
    return models::make_slope_with_blocks(n > 0 ? n : 300);
}

int usage() {
    std::fprintf(stderr,
                 "usage: gdda-prof [slope:N|rocks:N|tunnel|column:N] [options]\n"
                 "  --steps N --engine serial|gpu --device k20|k40\n"
                 "  --static --dynamic --top N --depth N\n"
                 "  --trace out.trace.json --from in.trace.json\n");
    return 2;
}

void print_report(const trace::Profile& prof, std::size_t top, int depth) {
    std::printf("== kernel launches (modeled device time) ==\n%s\n",
                prof.render_kernel_table(top).c_str());
    std::printf("== loop tree (inclusive wall time) ==\n%s\n",
                prof.render_loop_tree(depth).c_str());
    std::printf("total modeled kernel time: %.3f ms over %zu distinct kernels\n",
                prof.total_modeled_us() * 1e-3, prof.kernels().size());
    if (prof.step_wall_us() > 0.0)
        std::printf("traced step wall time:     %.3f ms\n", prof.step_wall_us() * 1e-3);
}

} // namespace

int main(int argc, char** argv) {
    std::string model_spec = "slope:300";
    int steps = 5;
    core::EngineMode mode = core::EngineMode::Gpu;
    std::string device = "k40";
    double velocity_carry = 0.0;
    std::size_t top = 0;
    int depth = 0;
    std::string trace_out;
    std::string trace_in;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
        if (a == "--steps") {
            steps = std::atoi(next());
        } else if (a == "--engine") {
            const char* v = next();
            if (!v) return usage();
            mode = std::strcmp(v, "serial") == 0 ? core::EngineMode::Serial
                                                 : core::EngineMode::Gpu;
        } else if (a == "--device") {
            const char* v = next();
            if (!v) return usage();
            device = v;
        } else if (a == "--static") {
            velocity_carry = 0.0;
        } else if (a == "--dynamic") {
            velocity_carry = 1.0;
        } else if (a == "--top") {
            top = static_cast<std::size_t>(std::atoi(next()));
        } else if (a == "--depth") {
            depth = std::atoi(next());
        } else if (a == "--trace") {
            const char* v = next();
            if (!v) return usage();
            trace_out = v;
        } else if (a == "--from") {
            const char* v = next();
            if (!v) return usage();
            trace_in = v;
        } else if (!a.empty() && a[0] != '-') {
            model_spec = a;
        } else {
            std::fprintf(stderr, "unknown option %s\n", a.c_str());
            return usage();
        }
    }

    // Report-only mode: rebuild the profile from an exported trace.
    if (!trace_in.empty()) {
        const trace::TraceValidation val = trace::validate_trace_file(trace_in);
        if (!val) {
            std::fprintf(stderr, "gdda-prof: %s: %s\n", trace_in.c_str(),
                         val.error.c_str());
            return 1;
        }
        std::ifstream in(trace_in);
        std::ostringstream buf;
        buf << in.rdbuf();
        obs::JsonValue doc;
        std::string err;
        if (!obs::JsonValue::parse(buf.str(), doc, &err)) {
            std::fprintf(stderr, "gdda-prof: %s: %s\n", trace_in.c_str(), err.c_str());
            return 1;
        }
        trace::Profile prof;
        if (!trace::Profile::from_chrome(doc, prof, &err)) {
            std::fprintf(stderr, "gdda-prof: %s: %s\n", trace_in.c_str(), err.c_str());
            return 1;
        }
        std::printf("gdda-prof: %s (%d events)\n\n", trace_in.c_str(), val.events);
        print_report(prof, top, depth);
        return 0;
    }

    try {
        block::BlockSystem sys = make_model(model_spec);
        core::SimConfig cfg;
        cfg.velocity_carry = velocity_carry;
        cfg.trace.enabled = true;
        cfg.trace.device = device;
        if (!trace_out.empty()) cfg.trace.chrome_path = trace_out;

        std::printf("gdda-prof: %s (%zu blocks), %d step(s), %s engine, %s\n\n",
                    model_spec.c_str(), sys.size(), steps,
                    mode == core::EngineMode::Gpu ? "gpu" : "serial",
                    trace::device_profile_by_name(device).name.c_str());

        core::DdaSimulation sim(std::move(sys), cfg, mode);
        sim.run(steps);

        const auto& tracer = sim.engine().tracer();
        const trace::Profile prof = trace::Profile::from_tracer(*tracer);
        print_report(prof, top, depth);

        // The trace is a per-launch decomposition of exactly what the ledgers
        // accumulated: per-module totals must agree to accumulation rounding.
        if (mode == core::EngineMode::Gpu) {
            const simt::DeviceProfile& dev = tracer->device();
            std::printf("\n== trace vs CostLedger agreement ==\n");
            bool all_ok = true;
            for (int m = 0; m < core::kModuleCount; ++m) {
                const simt::KernelCost ledger =
                    sim.engine().ledgers().ledger(static_cast<core::Module>(m)).total();
                const double ledger_ms = simt::modeled_ms(ledger, dev);
                const double trace_ms = prof.module_modeled_us(m) * 1e-3;
                // The ledger models one aggregated cost; the trace models each
                // launch separately, so compare the summed per-launch times
                // against the same decomposition of the ledger entries.
                const simt::KernelCost traced = prof.module_cost(m);
                const double rel =
                    std::abs(traced.flops - ledger.flops) +
                    std::abs(traced.bytes_coalesced - ledger.bytes_coalesced) +
                    std::abs(traced.bytes_random - ledger.bytes_random);
                const double denom = 1.0 + std::abs(ledger.flops) +
                                     std::abs(ledger.bytes_coalesced) +
                                     std::abs(ledger.bytes_random);
                const bool ok = rel / denom < 1e-9 && traced.launches == ledger.launches;
                all_ok = all_ok && ok;
                std::printf("  %-30s trace %10.3f ms   ledger %10.3f ms   launches %d/%d  %s\n",
                            std::string(core::kModuleNames[m]).c_str(), trace_ms, ledger_ms,
                            traced.launches, ledger.launches, ok ? "OK" : "MISMATCH");
            }
            std::printf("ledger agreement: %s\n", all_ok ? "OK" : "MISMATCH");
            if (!all_ok) return 1;
        }

        if (!trace_out.empty()) {
            std::string err;
            if (trace::write_chrome_trace(trace_out, *tracer, &err))
                std::printf("\nwrote %s (%llu events; load in Perfetto or "
                            "chrome://tracing)\n",
                            trace_out.c_str(),
                            static_cast<unsigned long long>(tracer->events_seen()));
            else
                std::fprintf(stderr, "trace export failed: %s\n", err.c_str());
        }
    } catch (const std::exception& e) {
        std::fprintf(stderr, "gdda-prof error: %s\n", e.what());
        return 1;
    }
    return 0;
}

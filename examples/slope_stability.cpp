// Case-1 style example: static stability analysis of a jointed slope
// (paper Figs. 11-12). Generates the slope, settles it to a static state,
// and writes initial/final snapshots plus a per-step log.
//
// Usage: slope_stability [target_blocks] [max_steps] [--trace [file.trace.json]]
//   --trace additionally enables hierarchical span tracing (docs/TRACING.md)
//   and exports a Perfetto-loadable Chrome trace (default slope.trace.json).

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/interpenetration.hpp"
#include "core/simulation.hpp"
#include "io/snapshot.hpp"
#include "models/slope.hpp"
#include "trace/chrome_export.hpp"

using namespace gdda;

int main(int argc, char** argv) {
    int positional[2] = {300, 800};
    int npos = 0;
    bool trace_on = false;
    std::string trace_path = "slope.trace.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--trace") == 0) {
            trace_on = true;
            if (i + 1 < argc && argv[i + 1][0] != '-') trace_path = argv[++i];
        } else if (npos < 2) {
            positional[npos++] = std::atoi(argv[i]);
        }
    }
    const int target_blocks = positional[0];
    const int max_steps = positional[1];

    block::BlockSystem sys = models::make_slope_with_blocks(target_blocks);
    std::printf("slope model: %zu blocks, %zu materials, %zu joint types\n", sys.size(),
                sys.materials.size(), sys.joints.size());
    io::write_snapshot_svg("slope_initial.svg", sys);

    core::SimConfig cfg;
    cfg.dt = 5e-4;
    cfg.dt_max = 2e-3;
    cfg.velocity_carry = 0.0; // static analysis
    cfg.precond = core::PrecondKind::BlockJacobi;

    // Structured telemetry: JSONL stream + CSV + in-memory aggregator. The
    // per-module breakdown below is rendered from the aggregated records.
    cfg.telemetry.enabled = true;
    cfg.telemetry.jsonl_path = "slope_telemetry.jsonl";
    cfg.telemetry.csv_path = "slope_telemetry.csv";
    if (trace_on) {
        cfg.trace.enabled = true;
        cfg.trace.chrome_path = trace_path;
    }

    core::DdaSimulation sim(std::move(sys), cfg, core::EngineMode::Serial);
    io::append_snapshot_csv("slope_states.csv", sim.system(), 0, /*truncate=*/true);

    const core::RunSummary sum = sim.run(
        max_steps, /*until_static=*/true, 1e-3, [&](int step, const core::StepStats& st) {
            if (step % 100 == 0) {
                std::printf("step %4d: dt=%.2e contacts=%zu (%zu active) oc=%d pcg=%d\n",
                            step, st.dt_used, st.contacts, st.active_contacts,
                            st.open_close_iters, st.pcg_iterations);
            }
        });

    std::printf("finished: %d steps, %.3f s simulated, static=%s\n", sum.steps_run,
                sum.simulated_time, sum.reached_static ? "yes" : "no");

    io::append_snapshot_csv("slope_states.csv", sim.system(), sum.steps_run);
    io::write_snapshot_svg("slope_final.svg", sim.system());

    const auto rep = core::audit_interpenetration(sim.system());
    std::printf("max interpenetration: %.2e m over %zu vertices\n", rep.max_depth,
                rep.penetrating_vertices);

    const auto& rec = sim.engine().recorder();
    rec->flush();
    const obs::Aggregator& agg = *rec->aggregator();
    std::printf("\n%s",
                agg.render_measured_table("per-module time (from telemetry records):")
                    .c_str());
    std::printf("PCG: %lld iterations over %lld solves, %lld open-close passes\n",
                agg.pcg_iterations(), agg.pcg_solves(), agg.open_close_iters());

    // The aggregated telemetry must account for exactly what the engine's
    // own module timers measured (acceptance: agree within 1e-9 s).
    const double drift = std::abs(agg.total_seconds() - sim.engine().timers().total());
    std::printf("telemetry vs ModuleTimers drift: %.2e s (%s)\n", drift,
                drift < 1e-9 ? "OK" : "MISMATCH");

    std::printf("wrote slope_initial.svg / slope_final.svg / slope_states.csv\n");
    std::printf("wrote slope_telemetry.jsonl / slope_telemetry.csv (%d records)\n",
                rec->steps_recorded());
    if (const auto& tracer = sim.engine().tracer()) {
        std::string err;
        if (trace::write_chrome_trace(trace_path, *tracer, &err))
            std::printf("wrote %s (%llu trace events)\n", trace_path.c_str(),
                        static_cast<unsigned long long>(tracer->events_seen()));
        else
            std::fprintf(stderr, "trace export failed: %s\n", err.c_str());
    }
    return 0;
}

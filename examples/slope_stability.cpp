// Case-1 style example: static stability analysis of a jointed slope
// (paper Figs. 11-12). Generates the slope, settles it to a static state,
// and writes initial/final snapshots plus a per-step log.
//
// Usage: slope_stability [target_blocks] [max_steps]

#include <cstdio>
#include <cstdlib>

#include "core/interpenetration.hpp"
#include "core/simulation.hpp"
#include "io/snapshot.hpp"
#include "models/slope.hpp"

using namespace gdda;

int main(int argc, char** argv) {
    const int target_blocks = argc > 1 ? std::atoi(argv[1]) : 300;
    const int max_steps = argc > 2 ? std::atoi(argv[2]) : 800;

    block::BlockSystem sys = models::make_slope_with_blocks(target_blocks);
    std::printf("slope model: %zu blocks, %zu materials, %zu joint types\n", sys.size(),
                sys.materials.size(), sys.joints.size());
    io::write_snapshot_svg("slope_initial.svg", sys);

    core::SimConfig cfg;
    cfg.dt = 5e-4;
    cfg.dt_max = 2e-3;
    cfg.velocity_carry = 0.0; // static analysis
    cfg.precond = core::PrecondKind::BlockJacobi;

    core::DdaSimulation sim(std::move(sys), cfg, core::EngineMode::Serial);
    io::append_snapshot_csv("slope_states.csv", sim.system(), 0, /*truncate=*/true);

    const core::RunSummary sum = sim.run(
        max_steps, /*until_static=*/true, 1e-3, [&](int step, const core::StepStats& st) {
            if (step % 100 == 0) {
                std::printf("step %4d: dt=%.2e contacts=%zu (%zu active) oc=%d pcg=%d\n",
                            step, st.dt_used, st.contacts, st.active_contacts,
                            st.open_close_iters, st.pcg_iterations);
            }
        });

    std::printf("finished: %d steps, %.3f s simulated, static=%s\n", sum.steps_run,
                sum.simulated_time, sum.reached_static ? "yes" : "no");

    io::append_snapshot_csv("slope_states.csv", sim.system(), sum.steps_run);
    io::write_snapshot_svg("slope_final.svg", sim.system());

    const auto rep = core::audit_interpenetration(sim.system());
    std::printf("max interpenetration: %.2e m over %zu vertices\n", rep.max_depth,
                rep.penetrating_vertices);

    const auto& t = sim.engine().timers();
    std::printf("\nper-module time (measured serial):\n");
    for (int m = 0; m < core::kModuleCount; ++m) {
        std::printf("  %-30s %8.3f s\n",
                    std::string(core::kModuleNames[m]).c_str(),
                    t.seconds(static_cast<core::Module>(m)));
    }
    std::printf("wrote slope_initial.svg / slope_final.svg / slope_states.csv\n");
    return 0;
}

// gdda run_model — the command-line driver: load a model (or a named
// built-in generator), run the DDA pipeline with configurable options, emit
// snapshots and checkpoints. The adoption-facing entry point of the library.
//
// Usage:
//   run_model <model.txt | slope:N | rocks:N | tunnel | column:N>
//             [--steps N] [--dt S] [--static|--dynamic]
//             [--engine serial|gpu] [--precond bj|ssor|eisenstat|ilu|jacobi]
//             [--spmv hsbcsr|sell] [--precision fp64|mixed]
//             [--exact-rotation]
//             [--snapshot prefix] [--snapshot-every N]
//             [--checkpoint-out file] [--checkpoint-in file]
//             [--report-energy] [--telemetry file.jsonl] [--trace file.trace.json]
//
// Examples:
//   run_model slope:400 --static --steps 800 --snapshot slope
//   run_model tunnel --dynamic --steps 2000 --checkpoint-out tun.ckpt
//   run_model tun.ckpt --checkpoint-in tun.ckpt --steps 2000

#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "core/energy.hpp"
#include "core/interpenetration.hpp"
#include "core/simulation.hpp"
#include "io/checkpoint.hpp"
#include "io/model_io.hpp"
#include "io/snapshot.hpp"
#include "models/falling_rocks.hpp"
#include "models/slope.hpp"
#include "models/stacks.hpp"
#include "models/tunnel.hpp"
#include "trace/chrome_export.hpp"

using namespace gdda;

namespace {

block::BlockSystem make_model(const std::string& spec) {
    const auto colon = spec.find(':');
    const std::string kind = spec.substr(0, colon);
    const int n = colon == std::string::npos ? 0 : std::atoi(spec.c_str() + colon + 1);
    if (kind == "slope") return models::make_slope_with_blocks(n > 0 ? n : 300);
    if (kind == "rocks") return models::make_falling_rocks_with_blocks(n > 0 ? n : 100);
    if (kind == "tunnel") return models::make_tunnel();
    if (kind == "column") return models::make_column(n > 0 ? n : 5);
    return io::load_model_file(spec);
}

int usage() {
    std::fprintf(stderr,
                 "usage: run_model <model.txt|slope:N|rocks:N|tunnel|column:N> [options]\n"
                 "  --steps N --dt S --static --dynamic --engine serial|gpu\n"
                 "  --precond bj|ssor|eisenstat|ilu|jacobi --exact-rotation\n"
                 "  --spmv hsbcsr|sell --precision fp64|mixed\n"
                 "  --snapshot prefix --snapshot-every N\n"
                 "  --checkpoint-out file --checkpoint-in file --report-energy\n"
                 "  --telemetry file.jsonl --trace file.trace.json\n");
    return 2;
}

} // namespace

int main(int argc, char** argv) {
    if (argc < 2) return usage();
    const std::string model_spec = argv[1];

    int steps = 500;
    core::SimConfig cfg;
    core::EngineMode mode = core::EngineMode::Serial;
    std::string snapshot_prefix;
    int snapshot_every = 100;
    std::string ckpt_out;
    std::string ckpt_in;
    bool report_energy = false;

    for (int i = 2; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
        if (a == "--steps") {
            steps = std::atoi(next());
        } else if (a == "--dt") {
            cfg.dt = std::atof(next());
            cfg.dt_max = cfg.dt * 2.0;
        } else if (a == "--static") {
            cfg.velocity_carry = 0.0;
        } else if (a == "--dynamic") {
            cfg.velocity_carry = 1.0;
        } else if (a == "--engine") {
            const char* v = next();
            mode = (v && std::strcmp(v, "gpu") == 0) ? core::EngineMode::Gpu
                                                     : core::EngineMode::Serial;
        } else if (a == "--precond") {
            const char* v = next();
            if (!v) return usage();
            if (std::strcmp(v, "bj") == 0) cfg.precond = core::PrecondKind::BlockJacobi;
            else if (std::strcmp(v, "ssor") == 0) cfg.precond = core::PrecondKind::SsorAi;
            else if (std::strcmp(v, "ilu") == 0) cfg.precond = core::PrecondKind::Ilu0;
            else if (std::strcmp(v, "eisenstat") == 0)
                cfg.precond = core::PrecondKind::SsorEisenstat;
            else if (std::strcmp(v, "jacobi") == 0) cfg.precond = core::PrecondKind::Jacobi;
            else return usage();
        } else if (a == "--spmv") {
            const char* v = next();
            if (!v) return usage();
            if (std::strcmp(v, "hsbcsr") == 0) cfg.spmv_backend = core::SpmvBackend::Hsbcsr;
            else if (std::strcmp(v, "sell") == 0) cfg.spmv_backend = core::SpmvBackend::SlicedEll;
            else return usage();
        } else if (a == "--precision") {
            const char* v = next();
            if (!v) return usage();
            if (std::strcmp(v, "fp64") == 0)
                cfg.pcg.precision = solver::PcgPrecision::Fp64;
            else if (std::strcmp(v, "mixed") == 0)
                cfg.pcg.precision = solver::PcgPrecision::MixedFp32;
            else return usage();
        } else if (a == "--exact-rotation") {
            cfg.exact_rotation = true;
        } else if (a == "--snapshot") {
            snapshot_prefix = next();
        } else if (a == "--snapshot-every") {
            snapshot_every = std::atoi(next());
        } else if (a == "--checkpoint-out") {
            ckpt_out = next();
        } else if (a == "--checkpoint-in") {
            ckpt_in = next();
        } else if (a == "--report-energy") {
            report_energy = true;
        } else if (a == "--telemetry") {
            const char* v = next();
            if (!v) return usage();
            cfg.telemetry.enabled = true;
            cfg.telemetry.jsonl_path = v;
        } else if (a == "--trace") {
            const char* v = next();
            if (!v) return usage();
            cfg.trace.enabled = true;
            cfg.trace.chrome_path = v;
        } else {
            std::fprintf(stderr, "unknown option %s\n", a.c_str());
            return usage();
        }
    }

    try {
        block::BlockSystem sys_storage;
        std::optional<core::DdaEngine> engine;
        if (!ckpt_in.empty()) {
            engine.emplace(
                io::resume_engine(io::load_checkpoint_file(ckpt_in), sys_storage, cfg, mode));
            std::printf("resumed from %s at t=%.4f s (%zu blocks)\n", ckpt_in.c_str(),
                        engine->time(), sys_storage.size());
        } else {
            sys_storage = make_model(model_spec);
            engine.emplace(sys_storage, cfg, mode);
            std::printf("model %s: %zu blocks\n", model_spec.c_str(), sys_storage.size());
        }

        if (!snapshot_prefix.empty())
            io::write_snapshot_svg(snapshot_prefix + "_t0.svg", engine->system());

        for (int s = 1; s <= steps; ++s) {
            const core::StepStats st = engine->step();
            if (s % std::max(snapshot_every, 1) == 0) {
                std::printf("step %5d: t=%.4f dt=%.2e contacts=%zu (%zu active) pcg=%d\n", s,
                            engine->time(), st.dt_used, st.contacts, st.active_contacts,
                            st.pcg_iterations);
                if (!snapshot_prefix.empty()) {
                    char name[256];
                    std::snprintf(name, sizeof name, "%s_t%d.svg", snapshot_prefix.c_str(), s);
                    io::write_snapshot_svg(name, engine->system());
                }
                if (report_energy) {
                    const core::EnergyReport e = core::measure_energy(engine->system());
                    std::printf("        energy: kinetic=%.3e potential=%.3e elastic=%.3e\n",
                                e.kinetic, e.potential, e.elastic);
                }
            }
        }

        const auto rep = core::audit_interpenetration(engine->system());
        std::printf("done: t=%.4f s, max interpenetration %.2e m\n", engine->time(),
                    rep.max_depth);

        const auto& t = engine->timers();
        for (int m = 0; m < core::kModuleCount; ++m)
            std::printf("  %-30s %8.3f s\n", std::string(core::kModuleNames[m]).c_str(),
                        t.seconds(static_cast<core::Module>(m)));
        if (mode == core::EngineMode::Gpu) {
            std::printf("  modeled GPU total: K20 %.1f ms, K40 %.1f ms\n",
                        engine->ledgers().total_modeled_ms(simt::tesla_k20()),
                        engine->ledgers().total_modeled_ms(simt::tesla_k40()));
        }

        if (!ckpt_out.empty()) {
            io::save_checkpoint_file(ckpt_out, *engine);
            std::printf("checkpoint written to %s\n", ckpt_out.c_str());
        }
        if (const auto& rec = engine->recorder()) {
            rec->flush();
            std::printf("telemetry: %d records -> %s\n", rec->steps_recorded(),
                        cfg.telemetry.jsonl_path.c_str());
        }
        if (const auto& tracer = engine->tracer()) {
            std::string err;
            if (trace::write_chrome_trace(cfg.trace.chrome_path, *tracer, &err))
                std::printf("trace: %llu events -> %s\n",
                            static_cast<unsigned long long>(tracer->events_seen()),
                            cfg.trace.chrome_path.c_str());
            else
                std::fprintf(stderr, "trace export failed: %s\n", err.c_str());
        }
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return 0;
}

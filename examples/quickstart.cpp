// Quickstart: build a tiny blocky system by hand, run the DDA pipeline, and
// print what happened. Demonstrates the minimal public API surface:
// BlockSystem -> SimConfig -> DdaSimulation -> step stats.
//
// Usage: quickstart [--telemetry [file.jsonl]] [--trace [file.trace.json]]
//   --telemetry enables the structured per-step telemetry stream (see
//   docs/TELEMETRY.md); the default output file is quickstart_telemetry.jsonl.
//   --trace enables hierarchical span tracing (see docs/TRACING.md) and
//   exports a Chrome trace-event file (default quickstart.trace.json),
//   loadable in Perfetto / chrome://tracing.

#include <cstdio>
#include <cstring>

#include "core/interpenetration.hpp"
#include "core/simulation.hpp"
#include "io/snapshot.hpp"
#include "trace/chrome_export.hpp"

using namespace gdda;

int main(int argc, char** argv) {
    // 1. Describe the blocky system: a fixed floor and two stacked blocks.
    block::BlockSystem sys;
    block::Material granite;
    granite.density = 2600.0;
    granite.young = 2.0e9;
    granite.poisson = 0.22;
    sys.materials = {granite};
    sys.joints = {block::JointMaterial{.friction_deg = 30.0, .cohesion = 0.0, .tension = 0.0}};

    sys.add_block({{-4, -1}, {4, -1}, {4, 0}, {-4, 0}}, 0, /*fixed=*/true);
    sys.add_block({{-0.6, 0.01}, {0.6, 0.01}, {0.6, 1.01}, {-0.6, 1.01}}, 0);
    sys.add_block({{-0.4, 1.03}, {0.4, 1.03}, {0.4, 1.83}, {-0.4, 1.83}}, 0);

    // 2. Configure: static analysis (velocities dropped each step).
    core::SimConfig cfg;
    cfg.dt = 1e-3;
    cfg.velocity_carry = 0.0;
    cfg.precond = core::PrecondKind::BlockJacobi;

    // Opt-in structured telemetry: one schema-versioned JSON record per step.
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--telemetry") == 0) {
            cfg.telemetry.enabled = true;
            cfg.telemetry.jsonl_path = (i + 1 < argc && argv[i + 1][0] != '-')
                                           ? argv[++i]
                                           : "quickstart_telemetry.jsonl";
        } else if (std::strcmp(argv[i], "--trace") == 0) {
            cfg.trace.enabled = true;
            cfg.trace.chrome_path = (i + 1 < argc && argv[i + 1][0] != '-')
                                        ? argv[++i]
                                        : "quickstart.trace.json";
        }
    }

    // 3. Run until the system stops moving.
    core::DdaSimulation sim(std::move(sys), cfg, core::EngineMode::Serial);
    const core::RunSummary sum = sim.run(500, /*until_static=*/true, 3e-3);

    std::printf("steps run          : %d\n", sum.steps_run);
    std::printf("simulated time     : %.4f s\n", sum.simulated_time);
    std::printf("reached static     : %s\n", sum.reached_static ? "yes" : "no");
    std::printf("contacts (last)    : %zu (%zu active)\n", sum.last.contacts,
                sum.last.active_contacts);
    std::printf("PCG iters (last)   : %d\n", sum.last.pcg_iterations);

    const auto rep = core::audit_interpenetration(sim.system());
    std::printf("max interpenetration: %.2e m\n", rep.max_depth);

    for (std::size_t b = 1; b < sim.system().size(); ++b) {
        const auto c = sim.system().blocks[b].centroid;
        std::printf("block %zu centroid  : (%.4f, %.4f)\n", b, c.x, c.y);
    }

    io::write_snapshot_svg("quickstart_final.svg", sim.system());
    std::printf("wrote quickstart_final.svg\n");

    if (const auto& rec = sim.engine().recorder()) {
        rec->flush();
        std::printf("telemetry: %d records -> %s\n", rec->steps_recorded(),
                    sim.engine().config().telemetry.jsonl_path.c_str());
    }
    if (const auto& tracer = sim.engine().tracer()) {
        const std::string& path = sim.engine().config().trace.chrome_path;
        std::string err;
        if (trace::write_chrome_trace(path, *tracer, &err))
            std::printf("trace: %llu events -> %s\n",
                        static_cast<unsigned long long>(tracer->events_seen()),
                        path.c_str());
        else
            std::fprintf(stderr, "trace export failed: %s\n", err.c_str());
    }
    return 0;
}

// Quickstart: build a tiny blocky system by hand, run the DDA pipeline, and
// print what happened. Demonstrates the minimal public API surface:
// BlockSystem -> SimConfig -> DdaSimulation -> step stats.

#include <cstdio>

#include "core/interpenetration.hpp"
#include "core/simulation.hpp"
#include "io/snapshot.hpp"

using namespace gdda;

int main() {
    // 1. Describe the blocky system: a fixed floor and two stacked blocks.
    block::BlockSystem sys;
    block::Material granite;
    granite.density = 2600.0;
    granite.young = 2.0e9;
    granite.poisson = 0.22;
    sys.materials = {granite};
    sys.joints = {block::JointMaterial{.friction_deg = 30.0, .cohesion = 0.0, .tension = 0.0}};

    sys.add_block({{-4, -1}, {4, -1}, {4, 0}, {-4, 0}}, 0, /*fixed=*/true);
    sys.add_block({{-0.6, 0.01}, {0.6, 0.01}, {0.6, 1.01}, {-0.6, 1.01}}, 0);
    sys.add_block({{-0.4, 1.03}, {0.4, 1.03}, {0.4, 1.83}, {-0.4, 1.83}}, 0);

    // 2. Configure: static analysis (velocities dropped each step).
    core::SimConfig cfg;
    cfg.dt = 1e-3;
    cfg.velocity_carry = 0.0;
    cfg.precond = core::PrecondKind::BlockJacobi;

    // 3. Run until the system stops moving.
    core::DdaSimulation sim(std::move(sys), cfg, core::EngineMode::Serial);
    const core::RunSummary sum = sim.run(500, /*until_static=*/true, 3e-3);

    std::printf("steps run          : %d\n", sum.steps_run);
    std::printf("simulated time     : %.4f s\n", sum.simulated_time);
    std::printf("reached static     : %s\n", sum.reached_static ? "yes" : "no");
    std::printf("contacts (last)    : %zu (%zu active)\n", sum.last.contacts,
                sum.last.active_contacts);
    std::printf("PCG iters (last)   : %d\n", sum.last.pcg_iterations);

    const auto rep = core::audit_interpenetration(sim.system());
    std::printf("max interpenetration: %.2e m\n", rep.max_depth);

    for (std::size_t b = 1; b < sim.system().size(); ++b) {
        const auto c = sim.system().blocks[b].centroid;
        std::printf("block %zu centroid  : (%.4f, %.4f)\n", b, c.x, c.y);
    }

    io::write_snapshot_svg("quickstart_final.svg", sim.system());
    std::printf("wrote quickstart_final.svg\n");
    return 0;
}

// gdda-serve — batch simulation service frontend for gdda::sched. Reads a
// job manifest (one scene per line, see src/sched/manifest.hpp for the
// grammar), runs every job over a worker pool, prints the fleet report, and
// optionally:
//
//   * --verify     re-runs every finished job solo (direct engine.step()
//                  loop on this thread) and compares state fingerprints —
//                  the scheduler's bitwise-determinism contract, enforced
//                  with a non-zero exit on any mismatch;
//   * --report F   writes the batch report as JSON (gdda.sched.batch);
//   * --trace F    collects per-worker span/kernel traces and merges them
//                  into one multi-lane Chrome trace.
//
// Exit status: 0 only when every job finished Done (and, with --verify,
// every fingerprint matched). 1 on job failures/mismatches, 2 on bad usage.
//
// Usage:
//   gdda-serve MANIFEST [--workers K] [--inner-threads N] [--queue N]
//              [--steps N] [--mode serial|gpu] [--device k20|k40] [--verify]
//              [--report out.json] [--trace out.trace.json] [--quiet]

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "par/thread_budget.hpp"
#include "sched/manifest.hpp"
#include "sched/scheduler.hpp"

using namespace gdda;

namespace {

int usage() {
    std::fprintf(stderr,
                 "usage: gdda-serve MANIFEST [options]\n"
                 "  --workers K          worker threads (default 4)\n"
                 "  --inner-threads N    solver threads per worker: 1 pins one\n"
                 "                       job to one core (default), 0 negotiates\n"
                 "                       a fair share of the host per worker\n"
                 "  --queue N            job queue capacity (default 32)\n"
                 "  --steps N            default step budget (default 10)\n"
                 "  --mode serial|gpu    default engine mode (default serial)\n"
                 "  --device k20|k40     device profile for utilization model\n"
                 "  --verify             re-run each job solo, compare fingerprints\n"
                 "  --report out.json    write batch report JSON\n"
                 "  --trace out.json     write merged multi-lane Chrome trace\n"
                 "  --quiet              suppress per-job table\n");
    return 2;
}

/// Solo baseline for --verify: same scene, same config, same step budget,
/// run on this thread through a plain engine loop (no scheduler involved).
std::uint64_t solo_fingerprint(const sched::Job& job) {
    block::BlockSystem sys = job.scene();
    core::DdaEngine engine(sys, job.config, job.mode);
    for (int s = 0; s < job.steps; ++s) engine.step();
    return sched::state_fingerprint(sys);
}

} // namespace

int main(int argc, char** argv) {
    std::string manifest_path;
    sched::SchedulerConfig cfg;
    cfg.workers = 4;
    sched::ManifestDefaults defaults;
    bool verify = false;
    bool quiet = false;
    std::string report_path;
    std::string trace_path;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "gdda-serve: %s needs a value\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--workers") cfg.workers = std::atoi(next());
        else if (arg == "--inner-threads") cfg.inner_threads = std::atoi(next());
        else if (arg == "--queue") cfg.queue_capacity = static_cast<std::size_t>(std::atoi(next()));
        else if (arg == "--steps") defaults.steps = std::atoi(next());
        else if (arg == "--mode") {
            const std::string v = next();
            if (v == "gpu") defaults.mode = core::EngineMode::Gpu;
            else if (v == "serial") defaults.mode = core::EngineMode::Serial;
            else return usage();
        } else if (arg == "--device") cfg.device = next();
        else if (arg == "--verify") verify = true;
        else if (arg == "--quiet") quiet = true;
        else if (arg == "--report") report_path = next();
        else if (arg == "--trace") trace_path = next();
        else if (arg == "--help" || arg == "-h") return usage();
        else if (!arg.empty() && arg[0] == '-') return usage();
        else if (manifest_path.empty()) manifest_path = arg;
        else return usage();
    }
    if (manifest_path.empty()) return usage();
    if (!trace_path.empty()) cfg.collect_traces = true;

    std::vector<sched::Job> jobs;
    try {
        jobs = sched::load_manifest(manifest_path, defaults);
    } catch (const std::exception& ex) {
        std::fprintf(stderr, "gdda-serve: %s\n", ex.what());
        return 2;
    }
    if (jobs.empty()) {
        std::fprintf(stderr, "gdda-serve: manifest '%s' has no jobs\n", manifest_path.c_str());
        return 2;
    }
    std::printf("gdda-serve: %zu jobs from %s, %d workers (queue %zu)\n", jobs.size(),
                manifest_path.c_str(), cfg.workers, cfg.queue_capacity);

    // Keep the Job list for --verify: the scheduler consumes its own copy.
    sched::BatchReport report;
    try {
        report = sched::Scheduler::run_batch(jobs, cfg);
    } catch (const std::exception& ex) {
        std::fprintf(stderr, "gdda-serve: scheduler failed: %s\n", ex.what());
        return 1;
    }

    if (!quiet) std::fputs(report.summary().c_str(), stdout);

    if (!report_path.empty()) {
        std::ofstream out(report_path, std::ios::out | std::ios::trunc);
        if (!out) {
            std::fprintf(stderr, "gdda-serve: cannot write %s\n", report_path.c_str());
            return 1;
        }
        out << report.to_json().dump() << '\n';
        std::printf("wrote %s\n", report_path.c_str());
    }
    if (!trace_path.empty()) {
        std::string err;
        if (!sched::write_batch_trace(trace_path, report, cfg.device, &err)) {
            std::fprintf(stderr, "gdda-serve: trace export failed: %s\n", err.c_str());
            return 1;
        }
        std::printf("wrote %s\n", trace_path.c_str());
    }

    int exit_code = report.all_done() ? 0 : 1;
    if (!report.all_done())
        std::fprintf(stderr, "gdda-serve: %d of %zu jobs did not finish Done\n",
                     static_cast<int>(report.jobs.size()) - report.done, report.jobs.size());

    if (verify) {
        // Install the same thread budget a worker lane would get. The
        // deterministic reduction layer makes this unnecessary for the bits;
        // it keeps the solo baseline's wall clock comparable run-for-run.
        par::ScopedThreadCap solo_cap(
            par::negotiate_inner_threads(cfg.workers, cfg.inner_threads));
        int mismatches = 0;
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            const sched::JobResult& r = report.jobs[i];
            if (r.state != sched::JobState::Done) continue;
            const std::uint64_t solo = solo_fingerprint(jobs[i]);
            if (solo != r.state_hash) {
                ++mismatches;
                std::fprintf(stderr,
                             "gdda-serve: DETERMINISM MISMATCH job '%s': scheduler %016llx"
                             " vs solo %016llx\n",
                             r.name.c_str(), static_cast<unsigned long long>(r.state_hash),
                             static_cast<unsigned long long>(solo));
            }
        }
        if (mismatches) {
            std::fprintf(stderr, "gdda-serve: verify FAILED (%d mismatching jobs)\n",
                         mismatches);
            exit_code = 1;
        } else {
            std::printf("verify: all %d finished jobs bitwise identical to solo runs\n",
                        report.done);
        }
    }
    return exit_code;
}

// gdda-serve — batch simulation service frontend for gdda::sched. Reads a
// job manifest (one scene per line, see src/sched/manifest.hpp for the
// grammar), runs every job over a worker pool, prints the fleet report, and
// optionally:
//
//   * --verify     re-runs every finished job solo (direct engine.step()
//                  loop on this thread) and compares state fingerprints —
//                  the scheduler's bitwise-determinism contract, enforced
//                  with a non-zero exit on any mismatch; also reports jobs
//                  that finished with non-converged PCG solves (silent
//                  solver failures are surfaced, not fatal);
//   * --report F   writes the batch report as JSON (gdda.sched.batch);
//   * --trace F    collects per-worker span/kernel traces and merges them
//                  into one multi-lane Chrome trace;
//   * --metrics F  enables per-job live metrics and writes the process-wide
//                  registry as Prometheus text exposition — once at the
//                  end, or periodically with --metrics-interval;
//   * --postmortem-dir D  arms the flight recorder: jobs ending Failed /
//                  DeadlineExceeded (or going health-Critical) dump a
//                  self-contained post-mortem bundle into D;
//   * --checkpoint-dir D  checkpoints every job into D (gdda::state binary
//                  snapshots, atomic writes) every --checkpoint-interval
//                  steps; retried jobs resume from their checkpoint instead
//                  of recomputing from step 0;
//   * --resume     crash recovery: jobs whose checkpoint file exists restore
//                  it and continue — bitwise-identical to never having been
//                  interrupted (docs/STATE.md), which `--resume --verify`
//                  proves against an uninterrupted solo rerun.
//
// The batch is served through a sched::Session (admission control,
// per-tenant fair queueing via the manifest `tenant=` key, live in-situ
// stats), not the bare drain-and-exit scheduler.
//
// Exit status: 0 only when every job finished Done (and, with --verify,
// every fingerprint matched). 1 on job failures/mismatches, 2 on bad usage.
//
// Usage:
//   gdda-serve MANIFEST [--workers K] [--inner-threads N] [--queue N]
//              [--steps N] [--mode serial|gpu] [--device k20|k40] [--verify]
//              [--report out.json] [--trace out.trace.json]
//              [--metrics out.prom] [--metrics-interval MS]
//              [--postmortem-dir DIR] [--checkpoint-dir DIR]
//              [--checkpoint-interval N] [--resume] [--live-stats] [--quiet]

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "metrics/registry.hpp"
#include "obs/aggregator.hpp"
#include "par/thread_budget.hpp"
#include "sched/manifest.hpp"
#include "sched/scheduler.hpp"
#include "sched/session.hpp"

using namespace gdda;

namespace {

int usage() {
    std::fprintf(stderr,
                 "usage: gdda-serve MANIFEST [options]\n"
                 "  --workers K          worker threads (default 4)\n"
                 "  --inner-threads N    step threads per worker (whole-step\n"
                 "                       team: contact + assembly + solve): 1 pins one\n"
                 "                       job to one core (default), 0 negotiates\n"
                 "                       a fair share of the host per worker\n"
                 "  --queue N            job queue capacity (default 32)\n"
                 "  --steps N            default step budget (default 10)\n"
                 "  --mode serial|gpu    default engine mode (default serial)\n"
                 "  --device k20|k40     device profile for utilization model\n"
                 "  --verify             re-run each job solo, compare fingerprints,\n"
                 "                       and report non-converged PCG solves\n"
                 "  --report out.json    write batch report JSON\n"
                 "  --trace out.json     write merged multi-lane Chrome trace\n"
                 "  --metrics out.prom   enable live metrics, write Prometheus text\n"
                 "  --metrics-interval MS  also rewrite the exposition file every\n"
                 "                       MS milliseconds while the batch runs\n"
                 "  --postmortem-dir D   dump flight-recorder bundles for failed /\n"
                 "                       deadline-exceeded / health-critical jobs\n"
                 "  --checkpoint-dir D   write gdda::state checkpoints into D; retried\n"
                 "                       jobs resume from their checkpoint\n"
                 "  --checkpoint-interval N  checkpoint every N steps (default 5 when\n"
                 "                       --checkpoint-dir is set)\n"
                 "  --resume             crash recovery: restore each job's checkpoint\n"
                 "                       file when it exists and continue from there\n"
                 "  --live-stats         print the live in-situ fleet aggregate after\n"
                 "                       the batch\n"
                 "  --quiet              suppress per-job table\n");
    return 2;
}

/// Background exposition writer for --metrics-interval: rewrites the
/// Prometheus file on a fixed cadence so an external scraper tailing the
/// path sees live values mid-batch. Purely an observer of the global
/// registry — never touches engine state.
class MetricsWriter {
public:
    MetricsWriter(std::string path, int interval_ms)
        : path_(std::move(path)), interval_ms_(interval_ms) {
        if (interval_ms_ > 0)
            thread_ = std::thread([this] { run(); });
    }
    ~MetricsWriter() { stop(); }

    void stop() {
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (done_) return;
            done_ = true;
        }
        cv_.notify_all();
        if (thread_.joinable()) thread_.join();
    }

    /// Final synchronous write; returns false (with message on stderr) on
    /// I/O failure.
    bool flush() const {
        std::string err;
        if (!metrics::write_exposition_file(path_, metrics::Registry::global(), &err)) {
            std::fprintf(stderr, "gdda-serve: metrics write failed: %s\n", err.c_str());
            return false;
        }
        return true;
    }

private:
    void run() {
        std::unique_lock<std::mutex> lock(mu_);
        while (!done_) {
            cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_),
                         [this] { return done_; });
            if (done_) break;
            lock.unlock();
            flush(); // periodic write failures are non-fatal; final flush reports
            lock.lock();
        }
    }

    std::string path_;
    int interval_ms_;
    std::mutex mu_;
    std::condition_variable cv_;
    bool done_ = false;
    std::thread thread_;
};

/// Solo baseline for --verify: same scene, same config, same step budget,
/// run on this thread through a plain engine loop (no scheduler involved).
std::uint64_t solo_fingerprint(const sched::Job& job) {
    block::BlockSystem sys = job.scene();
    core::DdaEngine engine(sys, job.config, job.mode);
    for (int s = 0; s < job.steps; ++s) engine.step();
    return sched::state_fingerprint(sys);
}

} // namespace

int main(int argc, char** argv) {
    std::string manifest_path;
    sched::SchedulerConfig cfg;
    cfg.workers = 4;
    sched::ManifestDefaults defaults;
    bool verify = false;
    bool quiet = false;
    std::string report_path;
    std::string trace_path;
    std::string metrics_path;
    int metrics_interval_ms = 0;
    std::string postmortem_dir;
    std::string checkpoint_dir;
    int checkpoint_interval = 5;
    bool resume = false;
    bool live_stats = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "gdda-serve: %s needs a value\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--workers") cfg.workers = std::atoi(next());
        else if (arg == "--inner-threads") cfg.inner_threads = std::atoi(next());
        else if (arg == "--queue") cfg.queue_capacity = static_cast<std::size_t>(std::atoi(next()));
        else if (arg == "--steps") defaults.steps = std::atoi(next());
        else if (arg == "--mode") {
            const std::string v = next();
            if (v == "gpu") defaults.mode = core::EngineMode::Gpu;
            else if (v == "serial") defaults.mode = core::EngineMode::Serial;
            else return usage();
        } else if (arg == "--device") cfg.device = next();
        else if (arg == "--verify") verify = true;
        else if (arg == "--quiet") quiet = true;
        else if (arg == "--report") report_path = next();
        else if (arg == "--trace") trace_path = next();
        else if (arg == "--metrics") metrics_path = next();
        else if (arg == "--metrics-interval") metrics_interval_ms = std::atoi(next());
        else if (arg == "--postmortem-dir") postmortem_dir = next();
        else if (arg == "--checkpoint-dir") checkpoint_dir = next();
        else if (arg == "--checkpoint-interval") checkpoint_interval = std::atoi(next());
        else if (arg == "--resume") resume = true;
        else if (arg == "--live-stats") live_stats = true;
        else if (arg == "--help" || arg == "-h") return usage();
        else if (!arg.empty() && arg[0] == '-') return usage();
        else if (manifest_path.empty()) manifest_path = arg;
        else return usage();
    }
    if (manifest_path.empty()) return usage();
    if (!trace_path.empty()) cfg.collect_traces = true;
    // --metrics / --postmortem-dir arm the per-job observer by default;
    // individual manifest lines can still override with metrics=off.
    if (!metrics_path.empty() || !postmortem_dir.empty())
        defaults.config.metrics.enabled = true;
    if (!postmortem_dir.empty()) defaults.config.metrics.postmortem_dir = postmortem_dir;
    if (checkpoint_interval < 0) {
        std::fprintf(stderr, "gdda-serve: --checkpoint-interval must be >= 0\n");
        return 2;
    }
    if (!checkpoint_dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(checkpoint_dir, ec);
        if (ec) {
            std::fprintf(stderr, "gdda-serve: cannot create checkpoint dir %s: %s\n",
                         checkpoint_dir.c_str(), ec.message().c_str());
            return 2;
        }
    }

    std::vector<sched::Job> jobs;
    try {
        jobs = sched::load_manifest(manifest_path, defaults);
    } catch (const std::exception& ex) {
        std::fprintf(stderr, "gdda-serve: %s\n", ex.what());
        return 2;
    }
    if (jobs.empty()) {
        std::fprintf(stderr, "gdda-serve: manifest '%s' has no jobs\n", manifest_path.c_str());
        return 2;
    }
    std::printf("gdda-serve: %zu jobs from %s, %d workers (queue %zu)\n", jobs.size(),
                manifest_path.c_str(), cfg.workers, cfg.queue_capacity);

    // Serve the batch through a persistent Session (admission, per-tenant
    // fair queueing, checkpoint/resume policy, in-situ stats) rather than
    // the bare drain-and-exit scheduler. Quotas are sized so a one-shot
    // batch is never self-rejected.
    sched::SessionConfig scfg;
    scfg.sched = cfg;
    scfg.checkpoint_dir = checkpoint_dir;
    scfg.checkpoint_interval = checkpoint_interval;
    scfg.resume = resume;
    scfg.live_stats = live_stats;
    scfg.max_pending_total = std::max<std::size_t>(scfg.max_pending_total, jobs.size());
    scfg.max_pending_per_tenant = scfg.max_pending_total;

    // Keep the Job list for --verify: the session consumes its own copy.
    sched::BatchReport report;
    obs::Aggregator live;
    try {
        MetricsWriter writer(metrics_path,
                             metrics_path.empty() ? 0 : metrics_interval_ms);
        sched::Session session(scfg);
        for (const sched::Job& job : jobs) session.submit(job);
        report = session.close();
        live = session.live_stats();
        writer.stop();
        if (!metrics_path.empty()) {
            if (!writer.flush()) return 1;
            std::printf("wrote %s\n", metrics_path.c_str());
        }
    } catch (const std::exception& ex) {
        std::fprintf(stderr, "gdda-serve: session failed: %s\n", ex.what());
        return 1;
    }

    if (!quiet) std::fputs(report.summary().c_str(), stdout);
    if (live_stats && live.steps() > 0)
        std::fputs(live.render_measured_table("live in-situ fleet totals").c_str(), stdout);

    if (!report_path.empty()) {
        std::ofstream out(report_path, std::ios::out | std::ios::trunc);
        if (!out) {
            std::fprintf(stderr, "gdda-serve: cannot write %s\n", report_path.c_str());
            return 1;
        }
        out << report.to_json().dump() << '\n';
        std::printf("wrote %s\n", report_path.c_str());
    }
    if (!trace_path.empty()) {
        std::string err;
        if (!sched::write_batch_trace(trace_path, report, cfg.device, &err)) {
            std::fprintf(stderr, "gdda-serve: trace export failed: %s\n", err.c_str());
            return 1;
        }
        std::printf("wrote %s\n", trace_path.c_str());
    }

    int exit_code = report.all_done() ? 0 : 1;
    if (!report.all_done())
        std::fprintf(stderr, "gdda-serve: %d of %zu jobs did not finish Done\n",
                     static_cast<int>(report.jobs.size()) - report.done, report.jobs.size());

    if (verify) {
        // Install the same thread budget a worker lane would get. The
        // deterministic reduction layer makes this unnecessary for the bits;
        // it keeps the solo baseline's wall clock comparable run-for-run.
        par::ScopedThreadCap solo_cap(
            par::negotiate_inner_threads(cfg.workers, cfg.inner_threads));
        // Tenant round-robin dispatch may reorder report.jobs relative to
        // the manifest, so match results to jobs by name (duplicates pair
        // up in order).
        std::vector<std::size_t> result_of(jobs.size(), report.jobs.size());
        {
            std::vector<bool> used(report.jobs.size(), false);
            for (std::size_t i = 0; i < jobs.size(); ++i)
                for (std::size_t k = 0; k < report.jobs.size(); ++k)
                    if (!used[k] && report.jobs[k].name == jobs[i].name) {
                        result_of[i] = k;
                        used[k] = true;
                        break;
                    }
        }
        int mismatches = 0;
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            if (result_of[i] >= report.jobs.size()) continue;
            const sched::JobResult& r = report.jobs[result_of[i]];
            if (r.state != sched::JobState::Done) continue;
            const std::uint64_t solo = solo_fingerprint(jobs[i]);
            if (solo != r.state_hash) {
                ++mismatches;
                std::fprintf(stderr,
                             "gdda-serve: DETERMINISM MISMATCH job '%s': scheduler %016llx"
                             " vs solo %016llx\n",
                             r.name.c_str(), static_cast<unsigned long long>(r.state_hash),
                             static_cast<unsigned long long>(solo));
            }
        }
        if (mismatches) {
            std::fprintf(stderr, "gdda-serve: verify FAILED (%d mismatching jobs)\n",
                         mismatches);
            exit_code = 1;
        } else {
            std::printf("verify: all %d finished jobs bitwise identical to solo runs\n",
                        report.done);
        }
        // Silent solver failures: a job can finish Done while individual PCG
        // solves hit the iteration cap without converging. Surface them here
        // (reported, not fatal — the trajectory is still deterministic).
        int flagged = 0;
        for (const sched::JobResult& r : report.jobs) {
            if (r.pcg_failed_solves <= 0) continue;
            ++flagged;
            std::fprintf(stderr,
                         "gdda-serve: verify: job '%s' had %lld non-converged PCG "
                         "solve(s) over %d steps\n",
                         r.name.c_str(), r.pcg_failed_solves, r.steps_done);
        }
        if (flagged == 0)
            std::printf("verify: no non-converged PCG solves in any job\n");
        else
            std::printf("verify: %d job(s) reported non-converged PCG solves (see stderr)\n",
                        flagged);
    }
    return exit_code;
}

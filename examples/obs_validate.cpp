// obs_validate — schema validator for telemetry streams. Reads a JSON-lines
// file produced by the gdda::obs JsonlSink (or stdin with "-") and checks
// every record against the versioned "gdda.obs.step" schema. Exit status 0
// iff every line validates, so it composes in CI:
//
//   quickstart --telemetry out.jsonl && obs_validate out.jsonl
//
// Usage: obs_validate <file.jsonl | -> [--schema]
//   --schema  print the machine-readable schema document and exit.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "obs/validate.hpp"

int main(int argc, char** argv) {
    using namespace gdda;

    if (argc >= 2 && std::strcmp(argv[1], "--schema") == 0) {
        std::printf("%s\n", obs::schema_json().c_str());
        return 0;
    }
    if (argc != 2) {
        std::fprintf(stderr, "usage: obs_validate <file.jsonl | -> [--schema]\n");
        return 2;
    }

    const std::string path = argv[1];
    const obs::ValidationResult res =
        path == "-" ? obs::validate_stream(std::cin) : obs::validate_file(path);

    if (!res) {
        std::fprintf(stderr, "obs_validate: %s: line %d: %s\n", path.c_str(), res.bad_line,
                     res.error.c_str());
        return 1;
    }
    std::printf("obs_validate: %s: %d records OK\n", path.c_str(), res.records);
    return 0;
}

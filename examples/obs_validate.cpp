// obs_validate — schema validator for gdda observability output. Reads a
// JSON-lines telemetry file produced by the gdda::obs JsonlSink (or stdin
// with "-") and checks every record against the versioned "gdda.obs.step"
// schema; with --trace it instead validates an exported Chrome trace file
// (balanced begin/end pairs, monotonic timestamps, known categories); with
// --metrics it validates a Prometheus text exposition file written by the
// gdda::metrics registry; with --postmortem it validates a flight-recorder
// post-mortem bundle (gdda.metrics.postmortem). Exit status 0 iff
// everything validates, so it composes in CI:
//
//   quickstart --telemetry out.jsonl --trace out.trace.json \
//     && obs_validate out.jsonl && obs_validate --trace out.trace.json
//   gdda-serve jobs.txt --metrics m.prom && obs_validate --metrics m.prom
//
// Usage: obs_validate [--trace | --metrics | --postmortem] <file | -> | --schema
//   --trace       validate a Chrome trace file (gdda.trace).
//   --metrics     validate a Prometheus text exposition file.
//   --postmortem  validate a post-mortem bundle JSON document.
//   --schema      print the machine-readable telemetry schema document and exit.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>

#include "metrics/validate.hpp"
#include "obs/validate.hpp"
#include "trace/validate.hpp"

int main(int argc, char** argv) {
    using namespace gdda;

    enum class Mode { Telemetry, Trace, Metrics, Postmortem };
    Mode mode = Mode::Telemetry;
    std::string path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--schema") == 0) {
            std::printf("%s\n", obs::schema_json().c_str());
            return 0;
        }
        if (std::strcmp(argv[i], "--trace") == 0) {
            mode = Mode::Trace;
        } else if (std::strcmp(argv[i], "--metrics") == 0) {
            mode = Mode::Metrics;
        } else if (std::strcmp(argv[i], "--postmortem") == 0) {
            mode = Mode::Postmortem;
        } else if (path.empty()) {
            path = argv[i];
        } else {
            path.clear();
            break;
        }
    }
    if (path.empty()) {
        std::fprintf(stderr,
                     "usage: obs_validate [--trace | --metrics | --postmortem] "
                     "<file | -> | --schema\n");
        return 2;
    }

    if (mode == Mode::Metrics) {
        metrics::ExpositionValidation res;
        if (path == "-") {
            res = metrics::validate_exposition(std::cin);
        } else {
            res = metrics::validate_exposition_file(path);
        }
        if (!res) {
            std::fprintf(stderr, "obs_validate: %s: %s\n", path.c_str(), res.error.c_str());
            return 1;
        }
        std::printf("obs_validate: %s: %d metric families, %d samples OK\n", path.c_str(),
                    res.families, res.samples);
        return 0;
    }

    if (mode == Mode::Postmortem) {
        metrics::PostmortemValidation res;
        if (path == "-") {
            std::ostringstream buf;
            buf << std::cin.rdbuf();
            std::string err;
            obs::JsonValue doc;
            if (!obs::JsonValue::parse(buf.str(), doc, &err)) {
                std::fprintf(stderr, "obs_validate: -: bad JSON: %s\n", err.c_str());
                return 1;
            }
            res = metrics::validate_postmortem(doc);
        } else {
            res = metrics::validate_postmortem_file(path);
        }
        if (!res) {
            std::fprintf(stderr, "obs_validate: %s: %s\n", path.c_str(), res.error.c_str());
            return 1;
        }
        std::printf("obs_validate: %s: post-mortem OK (%d step records, %d health verdicts)\n",
                    path.c_str(), res.records, res.verdicts);
        return 0;
    }

    if (mode == Mode::Trace) {
        trace::TraceValidation res;
        if (path == "-") {
            std::ostringstream buf;
            buf << std::cin.rdbuf();
            res = trace::validate_trace_text(buf.str());
        } else {
            res = trace::validate_trace_file(path);
        }
        if (!res) {
            std::fprintf(stderr, "obs_validate: %s: %s\n", path.c_str(), res.error.c_str());
            return 1;
        }
        std::printf("obs_validate: %s: %d trace events OK\n", path.c_str(), res.events);
        return 0;
    }

    const obs::ValidationResult res =
        path == "-" ? obs::validate_stream(std::cin) : obs::validate_file(path);

    if (!res) {
        std::fprintf(stderr, "obs_validate: %s: line %d: %s\n", path.c_str(), res.bad_line,
                     res.error.c_str());
        return 1;
    }
    std::printf("obs_validate: %s: %d records OK\n", path.c_str(), res.records);
    return 0;
}

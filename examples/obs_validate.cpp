// obs_validate — schema validator for gdda observability output. Reads a
// JSON-lines telemetry file produced by the gdda::obs JsonlSink (or stdin
// with "-") and checks every record against the versioned "gdda.obs.step"
// schema; with --trace it instead validates an exported Chrome trace file
// (balanced begin/end pairs, monotonic timestamps, known categories). Exit
// status 0 iff everything validates, so it composes in CI:
//
//   quickstart --telemetry out.jsonl --trace out.trace.json \
//     && obs_validate out.jsonl && obs_validate --trace out.trace.json
//
// Usage: obs_validate [--trace] <file | -> | --schema
//   --trace   validate a Chrome trace file (gdda.trace) instead of telemetry.
//   --schema  print the machine-readable telemetry schema document and exit.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/validate.hpp"
#include "trace/validate.hpp"

int main(int argc, char** argv) {
    using namespace gdda;

    bool trace_mode = false;
    std::string path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--schema") == 0) {
            std::printf("%s\n", obs::schema_json().c_str());
            return 0;
        }
        if (std::strcmp(argv[i], "--trace") == 0) {
            trace_mode = true;
        } else if (path.empty()) {
            path = argv[i];
        } else {
            path.clear();
            break;
        }
    }
    if (path.empty()) {
        std::fprintf(stderr, "usage: obs_validate [--trace] <file | -> | --schema\n");
        return 2;
    }

    if (trace_mode) {
        trace::TraceValidation res;
        if (path == "-") {
            std::ostringstream buf;
            buf << std::cin.rdbuf();
            res = trace::validate_trace_text(buf.str());
        } else {
            res = trace::validate_trace_file(path);
        }
        if (!res) {
            std::fprintf(stderr, "obs_validate: %s: %s\n", path.c_str(), res.error.c_str());
            return 1;
        }
        std::printf("obs_validate: %s: %d trace events OK\n", path.c_str(), res.events);
        return 0;
    }

    const obs::ValidationResult res =
        path == "-" ? obs::validate_stream(std::cin) : obs::validate_file(path);

    if (!res) {
        std::fprintf(stderr, "obs_validate: %s: line %d: %s\n", path.c_str(), res.bad_line,
                     res.error.c_str());
        return 1;
    }
    std::printf("obs_validate: %s: %d records OK\n", path.c_str(), res.records);
    return 0;
}

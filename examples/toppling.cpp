// Block toppling on an inclined plane — the classic DDA validation problem
// (Shi's thesis benchmarks DDA against exactly this rigid-body criterion):
//
//   a block of width b and height h on a plane of inclination a
//     * slides  when tan(a) > tan(phi)           (friction fails first)
//     * topples when tan(a) > b/h                (moment arm fails first)
//     * is stable when tan(a) is below both.
//
// This example sweeps the block aspect ratio on a fixed incline and reports
// which regime the simulation lands in, against the analytic criterion.
//
// Usage: toppling [angle_deg=25] [friction_deg=40]

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numbers>

#include "core/simulation.hpp"
#include "io/snapshot.hpp"

using namespace gdda;
using geom::Vec2;

namespace {

block::BlockSystem make_case(double angle_deg, double friction_deg, double b, double h) {
    block::BlockSystem sys;
    block::Material mat;
    mat.density = 2500.0;
    mat.young = 2.0e9;
    sys.materials = {mat};
    sys.joints = {block::JointMaterial{.friction_deg = friction_deg, .cohesion = 0.0,
                                       .tension = 0.0}};
    const double a = angle_deg * std::numbers::pi_v<double> / 180.0;
    const Vec2 t{std::cos(a), std::sin(a)};
    const Vec2 n{-std::sin(a), std::cos(a)};
    sys.add_block({t * -10.0, t * 10.0, t * 10.0 - n * 2.0, t * -10.0 - n * 2.0}, 0,
                  /*fixed=*/true);
    const Vec2 o = n * 0.003;
    sys.add_block({o - t * (b / 2), o + t * (b / 2), o + t * (b / 2) + n * h,
                   o - t * (b / 2) + n * h},
                  0);
    return sys;
}

const char* classify(double tilt_deg, double slid) {
    if (std::abs(tilt_deg) > 10.0) return "TOPPLES";
    if (std::abs(slid) > 0.25) return "SLIDES";
    return "stable";
}

} // namespace

int main(int argc, char** argv) {
    const double angle = argc > 1 ? std::atof(argv[1]) : 25.0;
    const double friction = argc > 2 ? std::atof(argv[2]) : 40.0;
    const double tan_a = std::tan(angle * std::numbers::pi_v<double> / 180.0);
    const double tan_phi = std::tan(friction * std::numbers::pi_v<double> / 180.0);

    std::printf("incline %.0f deg (tan=%.3f), friction %.0f deg (tan=%.3f)\n", angle, tan_a,
                friction, tan_phi);
    std::printf("analytic: topple when b/h < %.3f; slide when tan(phi) < %.3f (%s here)\n\n",
                tan_a, tan_a, tan_phi < tan_a ? "yes" : "no");
    std::printf("%8s %8s %10s %12s %12s %10s %10s\n", "b", "h", "b/h", "tilt (deg)",
                "slid (m)", "measured", "analytic");

    for (double ratio : {0.2, 0.35, 0.65, 0.9, 1.2}) {
        const double h = 1.2;
        const double b = ratio * h;
        block::BlockSystem sys = make_case(angle, friction, b, h);

        core::SimConfig cfg;
        cfg.dt = 1e-3;
        cfg.dt_max = 1e-3;
        cfg.velocity_carry = 1.0;
        core::DdaSimulation sim(std::move(sys), cfg, core::EngineMode::Serial);
        const Vec2 c0 = sim.system().blocks[1].centroid;
        const Vec2 edge0 = sim.system().blocks[1].verts[1] - sim.system().blocks[1].verts[0];
        sim.run(1200);

        const block::Block& blk = sim.system().blocks[1];
        const Vec2 edge1 = blk.verts[1] - blk.verts[0];
        const double tilt =
            std::atan2(edge0.cross(edge1), edge0.dot(edge1)) * 180.0 / std::numbers::pi_v<double>;
        const double slid = geom::distance(blk.centroid, c0);

        const char* analytic = ratio < tan_a          ? "TOPPLES"
                               : tan_phi < tan_a      ? "SLIDES"
                                                      : "stable";
        std::printf("%8.2f %8.2f %10.2f %12.1f %12.3f %10s %10s\n", b, h, ratio, tilt, slid,
                    classify(tilt, slid), analytic);
    }
    std::printf("\n(tilt measured on the base edge; slide as centroid travel)\n");
    return 0;
}
